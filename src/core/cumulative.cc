#include "core/cumulative.h"

#include <algorithm>

#include "ks/ks_test.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace moche {

Result<CumulativeFrame> CumulativeFrame::Build(const std::vector<double>& r,
                                               const std::vector<double>& t) {
  // Validate before sorting: std::sort on a range with NaN is undefined
  // behavior, so the non-finite check cannot be left to BuildFromSorted.
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(r, "reference set"));
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(t, "test set"));
  std::vector<double> rs = r;
  std::vector<double> ts = t;
  // moche-lint: allow(sort-doubles): range validated finite above (ks::ValidateSample)
  std::sort(rs.begin(), rs.end());
  // moche-lint: allow(sort-doubles): range validated finite above (ks::ValidateSample)
  std::sort(ts.begin(), ts.end());
  return BuildFromSortedUnchecked(rs, ts);
}

Result<CumulativeFrame> CumulativeFrame::BuildFromSorted(
    const std::vector<double>& r_sorted, const std::vector<double>& t_sorted) {
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(r_sorted, "reference set"));
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(t_sorted, "test set"));
  if (!std::is_sorted(r_sorted.begin(), r_sorted.end())) {
    return Status::InvalidArgument("reference set is not sorted ascending");
  }
  if (!std::is_sorted(t_sorted.begin(), t_sorted.end())) {
    return Status::InvalidArgument("test set is not sorted ascending");
  }
  return BuildFromSortedUnchecked(r_sorted, t_sorted);
}

Result<CumulativeFrame> CumulativeFrame::BuildFromSortedUnchecked(
    const std::vector<double>& r_sorted, const std::vector<double>& t_sorted) {
  CumulativeFrame frame;
  BuildFromSortedUncheckedInto(r_sorted, t_sorted, &frame);
  return frame;
}

void CumulativeFrame::BuildFromSortedUncheckedInto(
    const std::vector<double>& r_sorted, const std::vector<double>& t_sorted,
    CumulativeFrame* out) {
  MOCHE_DCHECK(!r_sorted.empty() && !t_sorted.empty());
  MOCHE_DCHECK(std::is_sorted(r_sorted.begin(), r_sorted.end()));
  MOCHE_DCHECK(std::is_sorted(t_sorted.begin(), t_sorted.end()));

  out->n_ = r_sorted.size();
  out->m_ = t_sorted.size();
  // clear() keeps capacity; n + m bounds q, so a warm frame never
  // reallocates mid-merge.
  out->values_.clear();
  out->cum_r_.clear();
  out->cum_t_.clear();
  const size_t q_bound = r_sorted.size() + t_sorted.size();
  out->values_.reserve(q_bound);
  out->cum_r_.reserve(q_bound + 1);
  out->cum_t_.reserve(q_bound + 1);
  out->cum_r_.push_back(0);
  out->cum_t_.push_back(0);

  size_t i = 0;
  size_t j = 0;
  while (i < r_sorted.size() || j < t_sorted.size()) {
    double x;
    if (j >= t_sorted.size() ||
        (i < r_sorted.size() && r_sorted[i] <= t_sorted[j])) {
      x = r_sorted[i];
    } else {
      x = t_sorted[j];
    }
    while (i < r_sorted.size() && r_sorted[i] == x) ++i;
    while (j < t_sorted.size() && t_sorted[j] == x) ++j;
    out->values_.push_back(x);
    out->cum_r_.push_back(static_cast<int64_t>(i));
    out->cum_t_.push_back(static_cast<int64_t>(j));
  }
}

Result<size_t> CumulativeFrame::IndexOfValue(double value) const {
  const auto it = std::lower_bound(values_.begin(), values_.end(), value);
  if (it == values_.end() || *it != value) {
    return Status::NotFound(
        StrFormat("value %g not in the base vector", value));
  }
  return static_cast<size_t>(it - values_.begin()) + 1;  // 1-based
}

Result<std::vector<int64_t>> CumulativeFrame::CumulativeOf(
    const std::vector<double>& subset) const {
  std::vector<int64_t> counts(q() + 1, 0);
  for (double v : subset) {
    MOCHE_ASSIGN_OR_RETURN(const size_t idx, IndexOfValue(v));
    ++counts[idx];
  }
  // prefix-sum the per-value multiplicities into a cumulative vector
  for (size_t i = 1; i <= q(); ++i) counts[i] += counts[i - 1];
  return counts;
}

}  // namespace moche
