// Phase 2 of MOCHE: Algorithm 1 — constructing the most comprehensible
// explanation by one scan of the test set in preference order, keeping each
// point iff the grown set is still a partial explanation (Theorem 3).

#ifndef MOCHE_CORE_BUILDER_H_
#define MOCHE_CORE_BUILDER_H_

#include <vector>

#include "core/bounds.h"
#include "core/explanation.h"
#include "core/preference.h"
#include "util/status.h"

namespace moche {

/// Counters for the construction scan (reported by the micro benches).
struct BuildStats {
  size_t candidates_checked = 0;  ///< Theorem 3 evaluations performed
  size_t recursion_steps = 0;     ///< total backward-recursion steps
};

/// Runs Algorithm 1. `test` is the instance's test set in original order;
/// `pref` the preference list; `k` the size found by phase 1.
/// With `incremental_check` false, every Theorem 3 evaluation uses the
/// paper-faithful full O(q) recursion.
/// Returns the explanation as indices into `test`, listed in `pref` order.
Result<Explanation> BuildMostComprehensible(const BoundsEngine& engine,
                                            size_t k,
                                            const std::vector<double>& test,
                                            const PreferenceList& pref,
                                            bool incremental_check = true,
                                            BuildStats* stats = nullptr);

}  // namespace moche

#endif  // MOCHE_CORE_BUILDER_H_
