// Phase 2 of MOCHE: Algorithm 1 — constructing the most comprehensible
// explanation by one scan of the test set in preference order, keeping each
// point iff the grown set is still a partial explanation (Theorem 3).
//
// Ownership & thread-safety: free functions only. They borrow the caller's
// BoundsEngine and write into caller-owned output/scratch; nothing is
// shared behind the caller's back, so concurrent calls are safe as long as
// each thread passes its own scratch (core/workspace.h).

#ifndef MOCHE_CORE_BUILDER_H_
#define MOCHE_CORE_BUILDER_H_

#include <vector>

#include "core/bounds.h"
#include "core/explanation.h"
#include "core/partial.h"
#include "core/preference.h"
#include "util/status.h"

namespace moche {

/// Counters for the construction scan (reported by the micro benches).
struct BuildStats {
  size_t candidates_checked = 0;  ///< Theorem 3 evaluations performed
  size_t recursion_steps = 0;     ///< total backward-recursion steps
};

/// Runs Algorithm 1. `test` is the instance's test set in original order;
/// `pref` the preference list; `k` the size found by phase 1.
/// With `incremental_check` false, every Theorem 3 evaluation uses the
/// paper-faithful full O(q) recursion.
/// Returns the explanation as indices into `test`, listed in `pref` order.
Result<Explanation> BuildMostComprehensible(const BoundsEngine& engine,
                                            size_t k,
                                            const std::vector<double>& test,
                                            const PreferenceList& pref,
                                            bool incremental_check = true,
                                            BuildStats* stats = nullptr);

/// Caller-owned scratch for BuildMostComprehensibleInto. Members are
/// rebuilt in place on every call (internal state, do not interpret);
/// reusing one BuildScratch across calls is what makes the warm scan
/// allocation-free. ExplainWorkspace embeds one.
struct BuildScratch {
  std::vector<size_t> value_index;
  PartialExplanationChecker checker;
  std::vector<unsigned char> pref_seen;

  size_t FootprintBytes() const {
    return value_index.capacity() * sizeof(size_t) +
           checker.FootprintBytes() + pref_seen.capacity();
  }
};

/// As BuildMostComprehensible, borrowing caller-owned scratch so a warm
/// caller (the ExplainWorkspace hot path) runs the scan without heap
/// allocation; the explanation is written into `out` (cleared first,
/// capacity reused). `stats`, when non-null, is overwritten — not
/// accumulated into. Results are identical to BuildMostComprehensible.
Status BuildMostComprehensibleInto(const BoundsEngine& engine, size_t k,
                                   const std::vector<double>& test,
                                   const PreferenceList& pref,
                                   bool incremental_check, BuildStats* stats,
                                   BuildScratch* scratch, Explanation* out);

namespace internal {

/// The body behind BuildMostComprehensibleInto with `pref` validation as a
/// PRECONDITION: the caller must have run ValidatePreference(pref,
/// test.size()) already (the public entry points do; Moche's explain
/// pipeline validates once at its entry instead of re-paying the O(m)
/// permutation check per call). Mirrors the ks::internal::*Unchecked
/// pattern.
Status BuildMostComprehensiblePrevalidated(
    const BoundsEngine& engine, size_t k, const std::vector<double>& test,
    const PreferenceList& pref, bool incremental_check, BuildStats* stats,
    BuildScratch* scratch, Explanation* out);

}  // namespace internal

}  // namespace moche

#endif  // MOCHE_CORE_BUILDER_H_
