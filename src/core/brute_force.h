// The brute-force explainer of Section 3.5: BFS over the set-enumeration
// tree ordered first by subset size, then by lexicographic order under the
// preference list. Exponential — usable only for small test sets — but it is
// the ground truth the property tests compare MOCHE against.
//
// Ownership & thread-safety: BruteForceExplainer owns only its options,
// fixed at construction; Explain is const with the whole BFS frontier on
// the stack/heap of the call, so one instance may serve concurrent
// callers.

#ifndef MOCHE_CORE_BRUTE_FORCE_H_
#define MOCHE_CORE_BRUTE_FORCE_H_

#include <cstddef>

#include "core/explanation.h"
#include "core/instance.h"
#include "core/preference.h"
#include "util/status.h"

namespace moche {

struct BruteForceOptions {
  /// Refuse instances with a larger test set (the subset count explodes).
  size_t max_m = 25;
};

class BruteForceExplainer {
 public:
  explicit BruteForceExplainer(BruteForceOptions options = {})
      : options_(options) {}

  /// The most comprehensible explanation by exhaustive search: the first
  /// subset, in (size, lexicographic-under-L) order, whose removal passes
  /// the KS test. AlreadyPasses / NotFound semantics match Moche::Explain.
  Result<Explanation> Explain(const KsInstance& instance,
                              const PreferenceList& preference) const;

  /// The smallest h such that some h-subset's removal passes the test.
  Result<size_t> MinimalSize(const KsInstance& instance) const;

  /// Exhaustively decides whether a qualified h-subset exists (the oracle
  /// for Theorem 1 in the property tests).
  Result<bool> ExistsQualifiedSubset(const KsInstance& instance,
                                     size_t h) const;

 private:
  BruteForceOptions options_;
};

}  // namespace moche

#endif  // MOCHE_CORE_BRUTE_FORCE_H_
