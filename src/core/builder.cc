#include "core/builder.h"

#include "util/string_util.h"

namespace moche {

Result<Explanation> BuildMostComprehensible(const BoundsEngine& engine,
                                            size_t k,
                                            const std::vector<double>& test,
                                            const PreferenceList& pref,
                                            bool incremental_check,
                                            BuildStats* stats) {
  BuildScratch scratch;
  Explanation expl;
  MOCHE_RETURN_IF_ERROR(BuildMostComprehensibleInto(
      engine, k, test, pref, incremental_check, stats, &scratch, &expl));
  return expl;
}

Status BuildMostComprehensibleInto(const BoundsEngine& engine, size_t k,
                                   const std::vector<double>& test,
                                   const PreferenceList& pref,
                                   bool incremental_check, BuildStats* stats,
                                   BuildScratch* scratch, Explanation* out) {
  MOCHE_RETURN_IF_ERROR(
      ValidatePreference(pref, test.size(), &scratch->pref_seen));
  return internal::BuildMostComprehensiblePrevalidated(
      engine, k, test, pref, incremental_check, stats, scratch, out);
}

Status internal::BuildMostComprehensiblePrevalidated(
    const BoundsEngine& engine, size_t k, const std::vector<double>& test,
    const PreferenceList& pref, bool incremental_check, BuildStats* stats,
    BuildScratch* scratch, Explanation* out) {
  const CumulativeFrame& frame = engine.frame();
  if (stats != nullptr) *stats = BuildStats{};
  if (test.size() != frame.m()) {
    return Status::InvalidArgument("test set does not match the frame");
  }

  // Map each test point to its 1-based base-vector index once.
  std::vector<size_t>* value_index = &scratch->value_index;
  PartialExplanationChecker* checker = &scratch->checker;
  value_index->resize(test.size());
  for (size_t i = 0; i < test.size(); ++i) {
    MOCHE_ASSIGN_OR_RETURN((*value_index)[i], frame.IndexOfValue(test[i]));
  }

  MOCHE_RETURN_IF_ERROR(checker->Reset(engine, k));

  out->indices.clear();
  out->indices.reserve(k);
  for (size_t pos = 0; pos < pref.size(); ++pos) {
    const size_t t_idx = pref[pos];
    const size_t v = (*value_index)[t_idx];
    if (stats != nullptr) ++stats->candidates_checked;
    const bool feasible = incremental_check
                              ? checker->CandidateFeasible(v)
                              : checker->CandidateFeasibleFull(v);
    if (feasible) {
      checker->Accept(v);
      out->indices.push_back(t_idx);
      if (checker->accepted_count() == k) {
        if (stats != nullptr) stats->recursion_steps = checker->steps();
        return Status::OK();
      }
    }
  }
  if (stats != nullptr) stats->recursion_steps = checker->steps();
  return Status::Internal(
      StrFormat("scan exhausted after accepting %zu of %zu points; "
                "phase 1 and phase 2 disagree",
                checker->accepted_count(), k));
}

}  // namespace moche
