#include "core/builder.h"

#include "core/partial.h"
#include "util/string_util.h"

namespace moche {

Result<Explanation> BuildMostComprehensible(const BoundsEngine& engine,
                                            size_t k,
                                            const std::vector<double>& test,
                                            const PreferenceList& pref,
                                            bool incremental_check,
                                            BuildStats* stats) {
  const CumulativeFrame& frame = engine.frame();
  if (test.size() != frame.m()) {
    return Status::InvalidArgument("test set does not match the frame");
  }
  MOCHE_RETURN_IF_ERROR(ValidatePreference(pref, test.size()));

  // Map each test point to its 1-based base-vector index once.
  std::vector<size_t> value_index(test.size());
  for (size_t i = 0; i < test.size(); ++i) {
    MOCHE_ASSIGN_OR_RETURN(value_index[i], frame.IndexOfValue(test[i]));
  }

  MOCHE_ASSIGN_OR_RETURN(PartialExplanationChecker checker,
                         PartialExplanationChecker::Create(engine, k));

  Explanation expl;
  expl.indices.reserve(k);
  for (size_t pos = 0; pos < pref.size(); ++pos) {
    const size_t t_idx = pref[pos];
    const size_t v = value_index[t_idx];
    if (stats != nullptr) ++stats->candidates_checked;
    const bool feasible = incremental_check
                              ? checker.CandidateFeasible(v)
                              : checker.CandidateFeasibleFull(v);
    if (feasible) {
      checker.Accept(v);
      expl.indices.push_back(t_idx);
      if (checker.accepted_count() == k) {
        if (stats != nullptr) stats->recursion_steps = checker.steps();
        return expl;
      }
    }
  }
  if (stats != nullptr) stats->recursion_steps = checker.steps();
  return Status::Internal(
      StrFormat("scan exhausted after accepting %zu of %zu points; "
                "phase 1 and phase 2 disagree",
                checker.accepted_count(), k));
}

}  // namespace moche
