#include "core/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ks/ks_test.h"
#include "util/logging.h"

namespace moche {

namespace {
// Absolute + relative slack absorbing the rounding difference between the
// Lemma 1 algebra and the direct KS comparison.
constexpr double kAbsTol = 1e-9;
constexpr double kRelTol = 1e-12;

double TolFor(double x) { return kAbsTol + kRelTol * std::fabs(x); }
}  // namespace

int64_t CeilTol(double x) {
  return static_cast<int64_t>(std::ceil(x - TolFor(x)));
}

int64_t FloorTol(double x) {
  return static_cast<int64_t>(std::floor(x + TolFor(x)));
}

BoundsEngine::BoundsEngine(const CumulativeFrame& frame, double alpha) {
  Reset(frame, alpha);
}

void BoundsEngine::Reset(const CumulativeFrame& frame, double alpha) {
  MOCHE_DCHECK(ks::ValidateAlpha(alpha).ok());
  frame_ = &frame;
  alpha_ = alpha;
  c_alpha_ = ks::internal::CriticalValueUnchecked(alpha);
  // Flatten the frame once: the Theorem 1/2 inner loops then stream one
  // contiguous array (no per-element accessor calls, no repeated
  // int64 -> double conversions; both conversions are exact, counts are
  // far below 2^53). resize keeps capacity, so a recycled engine's rebuild
  // is allocation-free once warm.
  const size_t q = frame.q();
  const int64_t m = static_cast<int64_t>(frame.m());
  coef_.resize(q + 1);
  coef_[0] = Coef{};
  for (size_t i = 1; i <= q; ++i) {
    Coef& c = coef_[i];
    c.ct = frame.CT(i);
    c.ct_d = static_cast<double>(c.ct);
    c.cr_d = static_cast<double>(frame.CR(i));
    c.rigid = c.ct - m;
  }
}

double BoundsEngine::Omega(size_t h) const {
  MOCHE_DCHECK(h < frame_->m());
  const double rem = static_cast<double>(frame_->m() - h);
  const double n = static_cast<double>(frame_->n());
  return c_alpha_ * std::sqrt(rem + rem * rem / n);
}

double BoundsEngine::Gamma(size_t i, size_t h) const {
  const double rem = static_cast<double>(frame_->m() - h);
  const double n = static_cast<double>(frame_->n());
  return coef_[i].ct_d - (rem / n) * coef_[i].cr_d;
}

BoundsVectors BoundsEngine::ComputeBounds(size_t h) const {
  BoundsVectors b;
  ComputeBoundsInto(h, &b.lower, &b.upper);
  return b;
}

void BoundsEngine::ComputeBoundsInto(size_t h, std::vector<int64_t>* lower,
                                     std::vector<int64_t>* upper) const {
  const size_t q = frame_->q();
  const int64_t hh = static_cast<int64_t>(h);
  const double omega = Omega(h);
  const double rem = static_cast<double>(frame_->m() - h);
  const double scale = rem / static_cast<double>(frame_->n());

  lower->assign(q + 1, 0);
  upper->assign(q + 1, 0);
  double running_max_gamma = -std::numeric_limits<double>::infinity();
  const Coef* coef = coef_.data();
  for (size_t i = 1; i <= q; ++i) {
    const Coef& c = coef[i];
    const double gamma = c.ct_d - scale * c.cr_d;
    if (gamma > running_max_gamma) running_max_gamma = gamma;
    const int64_t lo = std::max({CeilTol(running_max_gamma - omega),
                                 hh + c.rigid, int64_t{0}});
    const int64_t hi = std::min({FloorTol(gamma + omega), c.ct, hh});
    (*lower)[i] = lo;
    (*upper)[i] = hi;
  }
}

bool BoundsEngine::ExistsQualified(size_t h) const {
  return ExistsQualifiedWithFailure(h, nullptr);
}

bool BoundsEngine::ExistsQualifiedWithFailure(size_t h,
                                              ScanFailure* failure) const {
  const size_t q = frame_->q();
  const int64_t hh = static_cast<int64_t>(h);
  const double omega = Omega(h);
  const double rem = static_cast<double>(frame_->m() - h);
  const double scale = rem / static_cast<double>(frame_->n());

  double running_max_gamma = -std::numeric_limits<double>::infinity();
  size_t argmax = 0;
  const Coef* coef = coef_.data();
  for (size_t i = 1; i <= q; ++i) {
    const Coef& c = coef[i];
    const double gamma = c.ct_d - scale * c.cr_d;
    if (gamma > running_max_gamma) {
      running_max_gamma = gamma;
      argmax = i;
    }
    const double a = running_max_gamma - omega;  // seeds l_i's ceiling
    const double b = gamma + omega;              // seeds u_i's floor
    const int64_t rigid_lo = std::max(hh + c.rigid, int64_t{0});
    const int64_t rigid_hi = std::min(c.ct, hh);
    // Fast filter: l_i <= u_i is certain — with no rounding work — when the
    // real interval [a, b] spans at least one integer (b - a >= 1; the
    // CeilTol/FloorTol slack only widens it) and neither side conflicts
    // with the rigid integer bounds (a <= rigid_hi implies
    // ceil(a - tol) <= rigid_hi; b >= rigid_lo likewise). The rigid bounds
    // never conflict with each other (C_T[i] <= m and 0 <= h <= m). Only
    // coordinates near the bounds-crossing region take the exact path, so
    // decisions are identical to computing l_i/u_i outright.
    if (a <= static_cast<double>(rigid_hi) &&
        b >= static_cast<double>(rigid_lo) && b - a >= 1.0) {
      continue;
    }
    const int64_t lo = std::max(CeilTol(a), rigid_lo);
    const int64_t hi = std::min(FloorTol(b), rigid_hi);
    if (lo > hi) {
      if (failure != nullptr) {
        failure->fail = i;
        failure->argmax = argmax;
      }
      return false;
    }
  }
  return true;
}

bool BoundsEngine::NecessaryCondition(size_t h) const {
  const size_t q = frame_->q();
  const int64_t hh = static_cast<int64_t>(h);
  const double hh_d = static_cast<double>(h);
  const double omega = Omega(h);
  const double rem = static_cast<double>(frame_->m() - h);
  const double scale = rem / static_cast<double>(frame_->n());

  double running_max_gamma = -std::numeric_limits<double>::infinity();
  const Coef* coef = coef_.data();
  for (size_t i = 1; i <= q; ++i) {
    const double gamma = coef[i].ct_d - scale * coef[i].cr_d;
    if (gamma > running_max_gamma) running_max_gamma = gamma;
    const double a = running_max_gamma - omega;
    const double b = gamma + omega;
    // Fast filter mirroring ExistsQualified: each Equation 5 clause is
    // certain to hold when its real-valued form holds with the slack to
    // spare (floor(b + tol) >= floor(b) >= 0 when b >= 0, and so on).
    if (b >= 0.0 && a <= hh_d && a <= b) continue;
    // Equation 5a: 0 <= floor(Gamma + Omega)
    if (FloorTol(b) < 0) return false;
    // Equation 5b: ceil(M - Omega) <= h
    if (CeilTol(a) > hh) return false;
    // Equation 5c: M - Omega <= Gamma + Omega (real-valued, with slack)
    if (a > b + TolFor(gamma)) return false;
  }
  return true;
}

Result<std::vector<int64_t>> BoundsEngine::ConstructQualifiedVector(
    size_t h) const {
  const size_t q = frame_->q();
  const BoundsVectors b = ComputeBounds(h);
  for (size_t i = 1; i <= q; ++i) {
    if (b.lower[i] > b.upper[i]) {
      return Status::NotFound("no qualified cumulative vector at this size");
    }
  }
  // Theorem 1 sufficiency: start from C[q] = u_q and walk down, keeping
  // 0 <= C[i] - C[i-1] <= C_T[i] - C_T[i-1].
  std::vector<int64_t> cum(q + 1, 0);
  cum[q] = b.upper[q];
  for (size_t i = q; i >= 1; --i) {
    const int64_t lo_step = cum[i] - frame_->CountT(i);  // C[i-1] >= this
    const int64_t lo = std::max(b.lower[i - 1], lo_step);
    const int64_t hi = std::min(b.upper[i - 1], cum[i]);
    if (lo > hi) {
      return Status::Internal(
          "Theorem 1 construction failed; bounds are inconsistent");
    }
    cum[i - 1] = lo;
  }
  if (cum[0] != 0) {
    return Status::Internal("constructed vector does not start at 0");
  }
  if (cum[q] != static_cast<int64_t>(h)) {
    return Status::Internal("constructed vector has the wrong cardinality");
  }
  return cum;
}

std::vector<double> BoundsEngine::VectorToSubset(
    const std::vector<int64_t>& cum) const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(cum[frame_->q()]));
  for (size_t i = 1; i <= frame_->q(); ++i) {
    for (int64_t c = cum[i - 1]; c < cum[i]; ++c) {
      out.push_back(frame_->Value(i));
    }
  }
  return out;
}

bool SizeScan::ExistsQualified(size_t h) {
  if (have_failure_) {
    // O(1) probe at the coordinates that sank the previous size:
    // Gamma(argmax, h) lower-bounds the prefix maximum M(fail, h) because
    // argmax <= fail, and CeilTol is monotone, so a crossing proven from
    // the probe alone implies l_fail > u_fail — the full scan would return
    // false too.
    const BoundsEngine::Coef& cf = engine_.coef_[last_failure_.fail];
    const BoundsEngine::Coef& cm = engine_.coef_[last_failure_.argmax];
    const int64_t hh = static_cast<int64_t>(h);
    const double omega = engine_.Omega(h);
    const double rem = static_cast<double>(engine_.frame_->m() - h);
    const double scale = rem / static_cast<double>(engine_.frame_->n());
    const double gamma_max = cm.ct_d - scale * cm.cr_d;
    const double gamma_fail = cf.ct_d - scale * cf.cr_d;
    const int64_t hi = std::min({FloorTol(gamma_fail + omega), cf.ct, hh});
    // u_fail is exact; the three l_fail terms are lower bounds (the two
    // rigid ones exact, the Gamma one via the prefix argmax), so lo > hi
    // here is a proof, never a guess.
    const int64_t lo = std::max(
        {CeilTol(gamma_max - omega), hh + cf.rigid, int64_t{0}});
    if (lo > hi) {
      ++probe_refutations_;
      return false;
    }
  }
  ++full_scans_;
  BoundsEngine::ScanFailure failure;
  const bool exists = engine_.ExistsQualifiedWithFailure(h, &failure);
  if (exists) {
    have_failure_ = false;
  } else {
    last_failure_ = failure;
    have_failure_ = true;
  }
  return exists;
}

}  // namespace moche
