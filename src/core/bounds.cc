#include "core/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ks/ks_test.h"
#include "util/logging.h"
#include "util/simd.h"

namespace moche {

namespace {
// Absolute + relative slack absorbing the rounding difference between the
// Lemma 1 algebra and the direct KS comparison.
constexpr double kAbsTol = 1e-9;
constexpr double kRelTol = 1e-12;

double TolFor(double x) { return kAbsTol + kRelTol * std::fabs(x); }
}  // namespace

int64_t CeilTol(double x) {
  return static_cast<int64_t>(std::ceil(x - TolFor(x)));
}

int64_t FloorTol(double x) {
  return static_cast<int64_t>(std::floor(x + TolFor(x)));
}

BoundsEngine::BoundsEngine(const CumulativeFrame& frame, double alpha) {
  Reset(frame, alpha);
}

void BoundsEngine::Reset(const CumulativeFrame& frame, double alpha) {
  MOCHE_DCHECK(ks::ValidateAlpha(alpha).ok());
  frame_ = &frame;
  alpha_ = alpha;
  c_alpha_ = ks::internal::CriticalValueUnchecked(alpha);
  // Flatten the frame once: the Theorem 1/2 inner loops then stream
  // contiguous arrays (no per-element accessor calls, no repeated
  // int64 -> double conversions; all conversions are exact, counts are
  // far below 2^53). resize keeps capacity, so a recycled engine's rebuild
  // is allocation-free once warm.
  const size_t q = frame.q();
  const int64_t m = static_cast<int64_t>(frame.m());
  ct_d_.resize(q + 1);
  cr_d_.resize(q + 1);
  rigid_d_.resize(q + 1);
  ct_.resize(q + 1);
  rigid_.resize(q + 1);
  ct_d_[0] = 0.0;
  cr_d_[0] = 0.0;
  rigid_d_[0] = static_cast<double>(-m);
  ct_[0] = 0;
  rigid_[0] = -m;
  for (size_t i = 1; i <= q; ++i) {
    const int64_t ct = frame.CT(i);
    ct_[i] = ct;
    ct_d_[i] = static_cast<double>(ct);
    cr_d_[i] = static_cast<double>(frame.CR(i));
    rigid_[i] = ct - m;
    rigid_d_[i] = static_cast<double>(ct - m);
  }
}

double BoundsEngine::Omega(size_t h) const {
  MOCHE_DCHECK(h < frame_->m());
  const double rem = static_cast<double>(frame_->m() - h);
  const double n = static_cast<double>(frame_->n());
  return c_alpha_ * std::sqrt(rem + rem * rem / n);
}

double BoundsEngine::Gamma(size_t i, size_t h) const {
  const double rem = static_cast<double>(frame_->m() - h);
  const double n = static_cast<double>(frame_->n());
  return ct_d_[i] - (rem / n) * cr_d_[i];
}

BoundsVectors BoundsEngine::ComputeBounds(size_t h) const {
  BoundsVectors b;
  ComputeBoundsInto(h, &b.lower, &b.upper);
  return b;
}

void BoundsEngine::ComputeBoundsInto(size_t h, std::vector<int64_t>* lower,
                                     std::vector<int64_t>* upper) const {
  const size_t q = frame_->q();
  const int64_t hh = static_cast<int64_t>(h);
  const double omega = Omega(h);
  const double rem = static_cast<double>(frame_->m() - h);
  const double scale = rem / static_cast<double>(frame_->n());

  lower->assign(q + 1, 0);
  upper->assign(q + 1, 0);
  double running_max_gamma = -std::numeric_limits<double>::infinity();
  for (size_t i = 1; i <= q; ++i) {
    const double gamma = ct_d_[i] - scale * cr_d_[i];
    if (gamma > running_max_gamma) running_max_gamma = gamma;
    const int64_t lo = std::max({CeilTol(running_max_gamma - omega),
                                 hh + rigid_[i], int64_t{0}});
    const int64_t hi = std::min({FloorTol(gamma + omega), ct_[i], hh});
    (*lower)[i] = lo;
    (*upper)[i] = hi;
  }
}

bool BoundsEngine::ExistsQualified(size_t h) const {
  return ExistsQualifiedWithFailure(h, nullptr);
}

bool BoundsEngine::ExistsQualifiedWithFailure(size_t h,
                                              ScanFailure* failure) const {
  const size_t q = frame_->q();
  const int64_t hh = static_cast<int64_t>(h);
  const double hh_d = static_cast<double>(h);
  const double omega = Omega(h);
  const double rem = static_cast<double>(frame_->m() - h);
  const double scale = rem / static_cast<double>(frame_->n());

  // Fast filter (SIMD, util/simd.h): l_i <= u_i is certain — with no
  // rounding work — when the real interval [a, b] = [M_i - Omega,
  // Gamma_i + Omega] spans at least one integer (b - a >= 1; the
  // CeilTol/FloorTol slack only widens it) and neither side conflicts with
  // the rigid integer bounds (a <= rigid_hi implies
  // ceil(a - tol) <= rigid_hi; b >= rigid_lo likewise; both rigid bounds
  // compare identically in double — the conversions are exact). The rigid
  // bounds never conflict with each other (C_T[i] <= m and 0 <= h <= m).
  // The kernel stops at the first coordinate it cannot certify; that
  // coordinate takes the exact CeilTol/FloorTol path below, and the scan
  // resumes behind it — decisions are bit-identical to computing l_i/u_i
  // outright, whichever kernel table is active.
  const simd::Kernels& kernels = simd::ActiveKernels();
  const double* ct_d = ct_d_.data();
  const double* cr_d = cr_d_.data();
  double running_max_gamma = -std::numeric_limits<double>::infinity();
  size_t i = 1;
  while (i <= q) {
    const size_t stop =
        kernels.theorem1_filter_scan(ct_d, cr_d, rigid_d_.data(), i, q + 1,
                                     scale, omega, hh_d, &running_max_gamma);
    if (stop > q) return true;
    // running_max_gamma includes Gamma(stop, h) — the kernel contract.
    const double gamma = ct_d[stop] - scale * cr_d[stop];
    const double a = running_max_gamma - omega;  // seeds l_i's ceiling
    const double b = gamma + omega;              // seeds u_i's floor
    const int64_t rigid_lo = std::max(hh + rigid_[stop], int64_t{0});
    const int64_t rigid_hi = std::min(ct_[stop], hh);
    const int64_t lo = std::max(CeilTol(a), rigid_lo);
    const int64_t hi = std::min(FloorTol(b), rigid_hi);
    if (lo > hi) {
      if (failure != nullptr) {
        failure->fail = stop;
        // Re-derive the prefix argmax of Gamma at the failing coordinate
        // with the scalar loop's first-strict-greater semantics. Only the
        // failure path pays this O(stop) re-scan, and a failure ends the
        // whole check, so it happens at most once per call.
        double rm = -std::numeric_limits<double>::infinity();
        size_t argmax = 0;
        for (size_t j = 1; j <= stop; ++j) {
          const double g = ct_d[j] - scale * cr_d[j];
          if (g > rm) {
            rm = g;
            argmax = j;
          }
        }
        failure->argmax = argmax;
      }
      return false;
    }
    i = stop + 1;
  }
  return true;
}

bool BoundsEngine::NecessaryCondition(size_t h) const {
  const size_t q = frame_->q();
  const int64_t hh = static_cast<int64_t>(h);
  const double hh_d = static_cast<double>(h);
  const double omega = Omega(h);
  const double rem = static_cast<double>(frame_->m() - h);
  const double scale = rem / static_cast<double>(frame_->n());

  // Fast filter (SIMD) mirroring ExistsQualified: each Equation 5 clause is
  // certain to hold when its real-valued form holds with the slack to
  // spare (floor(b + tol) >= floor(b) >= 0 when b >= 0, and so on). The
  // kernel stops at the first coordinate the filter cannot certify; the
  // three exact checks run there, and the scan resumes behind it.
  const simd::Kernels& kernels = simd::ActiveKernels();
  const double* ct_d = ct_d_.data();
  const double* cr_d = cr_d_.data();
  double running_max_gamma = -std::numeric_limits<double>::infinity();
  size_t i = 1;
  while (i <= q) {
    const size_t stop = kernels.theorem2_filter_scan(
        ct_d, cr_d, i, q + 1, scale, omega, hh_d, &running_max_gamma);
    if (stop > q) return true;
    const double gamma = ct_d[stop] - scale * cr_d[stop];
    const double a = running_max_gamma - omega;
    const double b = gamma + omega;
    // Equation 5a: 0 <= floor(Gamma + Omega)
    if (FloorTol(b) < 0) return false;
    // Equation 5b: ceil(M - Omega) <= h
    if (CeilTol(a) > hh) return false;
    // Equation 5c: M - Omega <= Gamma + Omega (real-valued, with slack)
    if (a > b + TolFor(gamma)) return false;
    i = stop + 1;
  }
  return true;
}

Result<std::vector<int64_t>> BoundsEngine::ConstructQualifiedVector(
    size_t h) const {
  const size_t q = frame_->q();
  const BoundsVectors b = ComputeBounds(h);
  for (size_t i = 1; i <= q; ++i) {
    if (b.lower[i] > b.upper[i]) {
      return Status::NotFound("no qualified cumulative vector at this size");
    }
  }
  // Theorem 1 sufficiency: start from C[q] = u_q and walk down, keeping
  // 0 <= C[i] - C[i-1] <= C_T[i] - C_T[i-1].
  std::vector<int64_t> cum(q + 1, 0);
  cum[q] = b.upper[q];
  for (size_t i = q; i >= 1; --i) {
    const int64_t lo_step = cum[i] - frame_->CountT(i);  // C[i-1] >= this
    const int64_t lo = std::max(b.lower[i - 1], lo_step);
    const int64_t hi = std::min(b.upper[i - 1], cum[i]);
    if (lo > hi) {
      return Status::Internal(
          "Theorem 1 construction failed; bounds are inconsistent");
    }
    cum[i - 1] = lo;
  }
  if (cum[0] != 0) {
    return Status::Internal("constructed vector does not start at 0");
  }
  if (cum[q] != static_cast<int64_t>(h)) {
    return Status::Internal("constructed vector has the wrong cardinality");
  }
  return cum;
}

std::vector<double> BoundsEngine::VectorToSubset(
    const std::vector<int64_t>& cum) const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(cum[frame_->q()]));
  for (size_t i = 1; i <= frame_->q(); ++i) {
    for (int64_t c = cum[i - 1]; c < cum[i]; ++c) {
      out.push_back(frame_->Value(i));
    }
  }
  return out;
}

bool SizeScan::ExistsQualified(size_t h) {
  if (have_failure_) {
    // O(1) probe at the coordinates that sank the previous size:
    // Gamma(argmax, h) lower-bounds the prefix maximum M(fail, h) because
    // argmax <= fail, and CeilTol is monotone, so a crossing proven from
    // the probe alone implies l_fail > u_fail — the full scan would return
    // false too.
    const size_t fail = last_failure_.fail;
    const size_t amax = last_failure_.argmax;
    const int64_t hh = static_cast<int64_t>(h);
    const double omega = engine_.Omega(h);
    const double rem = static_cast<double>(engine_.frame_->m() - h);
    const double scale = rem / static_cast<double>(engine_.frame_->n());
    const double gamma_max =
        engine_.ct_d_[amax] - scale * engine_.cr_d_[amax];
    const double gamma_fail =
        engine_.ct_d_[fail] - scale * engine_.cr_d_[fail];
    const int64_t hi =
        std::min({FloorTol(gamma_fail + omega), engine_.ct_[fail], hh});
    // u_fail is exact; the three l_fail terms are lower bounds (the two
    // rigid ones exact, the Gamma one via the prefix argmax), so lo > hi
    // here is a proof, never a guess.
    const int64_t lo = std::max(
        {CeilTol(gamma_max - omega), hh + engine_.rigid_[fail], int64_t{0}});
    if (lo > hi) {
      ++probe_refutations_;
      return false;
    }
  }
  ++full_scans_;
  BoundsEngine::ScanFailure failure;
  const bool exists = engine_.ExistsQualifiedWithFailure(h, &failure);
  if (exists) {
    have_failure_ = false;
  } else {
    last_failure_ = failure;
    have_failure_ = true;
  }
  return exists;
}

}  // namespace moche
