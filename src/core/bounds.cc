#include "core/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ks/ks_test.h"
#include "util/logging.h"

namespace moche {

namespace {
// Absolute + relative slack absorbing the rounding difference between the
// Lemma 1 algebra and the direct KS comparison.
constexpr double kAbsTol = 1e-9;
constexpr double kRelTol = 1e-12;

double TolFor(double x) { return kAbsTol + kRelTol * std::fabs(x); }
}  // namespace

int64_t CeilTol(double x) {
  return static_cast<int64_t>(std::ceil(x - TolFor(x)));
}

int64_t FloorTol(double x) {
  return static_cast<int64_t>(std::floor(x + TolFor(x)));
}

BoundsEngine::BoundsEngine(const CumulativeFrame& frame, double alpha)
    : frame_(frame),
      alpha_(alpha),
      c_alpha_(ks::internal::CriticalValueUnchecked(alpha)) {
  MOCHE_DCHECK(ks::ValidateAlpha(alpha).ok());
}

double BoundsEngine::Omega(size_t h) const {
  MOCHE_DCHECK(h < frame_.m());
  const double rem = static_cast<double>(frame_.m() - h);
  const double n = static_cast<double>(frame_.n());
  return c_alpha_ * std::sqrt(rem + rem * rem / n);
}

double BoundsEngine::Gamma(size_t i, size_t h) const {
  const double rem = static_cast<double>(frame_.m() - h);
  const double n = static_cast<double>(frame_.n());
  return static_cast<double>(frame_.CT(i)) -
         (rem / n) * static_cast<double>(frame_.CR(i));
}

BoundsVectors BoundsEngine::ComputeBounds(size_t h) const {
  const size_t q = frame_.q();
  const int64_t hh = static_cast<int64_t>(h);
  const int64_t m = static_cast<int64_t>(frame_.m());
  const double omega = Omega(h);

  BoundsVectors b;
  b.lower.assign(q + 1, 0);
  b.upper.assign(q + 1, 0);
  double running_max_gamma = -std::numeric_limits<double>::infinity();
  for (size_t i = 1; i <= q; ++i) {
    const double gamma = Gamma(i, h);
    running_max_gamma = std::max(running_max_gamma, gamma);
    const int64_t lo =
        std::max({CeilTol(running_max_gamma - omega), hh - m + frame_.CT(i),
                  int64_t{0}});
    const int64_t hi = std::min({FloorTol(gamma + omega), frame_.CT(i), hh});
    b.lower[i] = lo;
    b.upper[i] = hi;
  }
  return b;
}

bool BoundsEngine::ExistsQualified(size_t h) const {
  const size_t q = frame_.q();
  const int64_t hh = static_cast<int64_t>(h);
  const int64_t m = static_cast<int64_t>(frame_.m());
  const double omega = Omega(h);

  double running_max_gamma = -std::numeric_limits<double>::infinity();
  for (size_t i = 1; i <= q; ++i) {
    const double gamma = Gamma(i, h);
    running_max_gamma = std::max(running_max_gamma, gamma);
    const int64_t lo =
        std::max({CeilTol(running_max_gamma - omega), hh - m + frame_.CT(i),
                  int64_t{0}});
    const int64_t hi = std::min({FloorTol(gamma + omega), frame_.CT(i), hh});
    if (lo > hi) return false;
  }
  return true;
}

bool BoundsEngine::NecessaryCondition(size_t h) const {
  const size_t q = frame_.q();
  const int64_t hh = static_cast<int64_t>(h);
  const double omega = Omega(h);

  double running_max_gamma = -std::numeric_limits<double>::infinity();
  for (size_t i = 1; i <= q; ++i) {
    const double gamma = Gamma(i, h);
    running_max_gamma = std::max(running_max_gamma, gamma);
    // Equation 5a: 0 <= floor(Gamma + Omega)
    if (FloorTol(gamma + omega) < 0) return false;
    // Equation 5b: ceil(M - Omega) <= h
    if (CeilTol(running_max_gamma - omega) > hh) return false;
    // Equation 5c: M - Omega <= Gamma + Omega (real-valued, with slack)
    if (running_max_gamma - omega > gamma + omega + TolFor(gamma)) {
      return false;
    }
  }
  return true;
}

Result<std::vector<int64_t>> BoundsEngine::ConstructQualifiedVector(
    size_t h) const {
  const size_t q = frame_.q();
  const BoundsVectors b = ComputeBounds(h);
  for (size_t i = 1; i <= q; ++i) {
    if (b.lower[i] > b.upper[i]) {
      return Status::NotFound("no qualified cumulative vector at this size");
    }
  }
  // Theorem 1 sufficiency: start from C[q] = u_q and walk down, keeping
  // 0 <= C[i] - C[i-1] <= C_T[i] - C_T[i-1].
  std::vector<int64_t> cum(q + 1, 0);
  cum[q] = b.upper[q];
  for (size_t i = q; i >= 1; --i) {
    const int64_t lo_step = cum[i] - frame_.CountT(i);  // C[i-1] >= this
    const int64_t lo = std::max(b.lower[i - 1], lo_step);
    const int64_t hi = std::min(b.upper[i - 1], cum[i]);
    if (lo > hi) {
      return Status::Internal(
          "Theorem 1 construction failed; bounds are inconsistent");
    }
    cum[i - 1] = lo;
  }
  if (cum[0] != 0) {
    return Status::Internal("constructed vector does not start at 0");
  }
  if (cum[q] != static_cast<int64_t>(h)) {
    return Status::Internal("constructed vector has the wrong cardinality");
  }
  return cum;
}

std::vector<double> BoundsEngine::VectorToSubset(
    const std::vector<int64_t>& cum) const {
  std::vector<double> out;
  for (size_t i = 1; i <= frame_.q(); ++i) {
    for (int64_t c = cum[i - 1]; c < cum[i]; ++c) {
      out.push_back(frame_.Value(i));
    }
  }
  return out;
}

}  // namespace moche
