#include "core/preference.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/string_util.h"

namespace moche {

Status ValidatePreference(const PreferenceList& pref, size_t m) {
  std::vector<unsigned char> seen;
  return ValidatePreference(pref, m, &seen);
}

Status ValidatePreference(const PreferenceList& pref, size_t m,
                          std::vector<unsigned char>* seen) {
  if (pref.size() != m) {
    return Status::InvalidArgument(
        StrFormat("preference list has %zu entries, test set has %zu",
                  pref.size(), m));
  }
  seen->assign(m, 0);
  for (size_t idx : pref) {
    if (idx >= m) {
      return Status::OutOfRange(
          StrFormat("preference entry %zu out of range (m=%zu)", idx, m));
    }
    if ((*seen)[idx]) {
      return Status::InvalidArgument(
          StrFormat("preference entry %zu repeated", idx));
    }
    (*seen)[idx] = 1;
  }
  return Status::OK();
}

PreferenceList IdentityPreference(size_t m) {
  PreferenceList pref;
  IdentityPreferenceInto(m, &pref);
  return pref;
}

void IdentityPreferenceInto(size_t m, PreferenceList* out) {
  out->resize(m);
  std::iota(out->begin(), out->end(), size_t{0});
}

namespace {

// Scores can come straight from user CSVs (moche_cli --scores), where
// "nan" parses to NaN. A plain `scores[a] > scores[b]` comparator is not a
// strict weak order over NaN (UB in stable_sort), so NaN is ordered
// explicitly: always after every real score, ties kept stable by index.
PreferenceList RankByScore(const std::vector<double>& scores,
                           bool descending) {
  PreferenceList pref = IdentityPreference(scores.size());
  // moche-lint: allow(sort-doubles): comparator orders NaN explicitly (strict weak order by construction)
  std::stable_sort(pref.begin(), pref.end(), [&](size_t a, size_t b) {
    const double x = scores[a];
    const double y = scores[b];
    const bool x_nan = std::isnan(x);
    const bool y_nan = std::isnan(y);
    if (x_nan || y_nan) return !x_nan && y_nan;  // real scores first
    return descending ? x > y : x < y;
  });
  return pref;
}

}  // namespace

PreferenceList PreferenceByScoreDesc(const std::vector<double>& scores) {
  return RankByScore(scores, /*descending=*/true);
}

PreferenceList PreferenceByScoreAsc(const std::vector<double>& scores) {
  return RankByScore(scores, /*descending=*/false);
}

PreferenceList PreferenceByValue(const std::vector<double>& values,
                                 bool descending) {
  return descending ? PreferenceByScoreDesc(values)
                    : PreferenceByScoreAsc(values);
}

PreferenceList RandomPreference(size_t m, Rng* rng) {
  PreferenceList pref = IdentityPreference(m);
  rng->Shuffle(&pref);
  return pref;
}

std::vector<size_t> PreferenceRanks(const PreferenceList& pref) {
  std::vector<size_t> rank(pref.size());
  for (size_t pos = 0; pos < pref.size(); ++pos) rank[pref[pos]] = pos;
  return rank;
}

}  // namespace moche
