#include "core/size_search.h"

namespace moche {

Result<size_t> SizeSearcher::LowerBound(size_t* checks) const {
  const size_t m = engine_.frame().m();
  if (m < 2) {
    return Status::InvalidArgument("test set too small to explain");
  }
  size_t local_checks = 0;
  // Invariant: condition holds at `hi`, fails at `lo` (half-open search).
  size_t hi = m - 1;
  ++local_checks;
  if (!engine_.NecessaryCondition(hi)) {
    if (checks != nullptr) *checks += local_checks;
    return Status::NotFound(
        "no subset size satisfies Theorem 2; no explanation exists");
  }
  size_t lo = 0;  // sentinel below the valid range
  while (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    ++local_checks;
    if (engine_.NecessaryCondition(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  if (checks != nullptr) *checks += local_checks;
  return hi;
}

Result<SizeSearchResult> SizeSearcher::FindSize(bool use_lower_bound) const {
  const size_t m = engine_.frame().m();
  if (m < 2) {
    return Status::InvalidArgument("test set too small to explain");
  }
  SizeSearchResult result;
  size_t start = 1;
  if (use_lower_bound) {
    MOCHE_ASSIGN_OR_RETURN(start, LowerBound(&result.theorem2_checks));
  }
  result.k_hat = start;
  // The walk over adjacent candidate sizes carries SizeScan's failure
  // state: sizes that fail for the same reason as their predecessor are
  // refuted in O(1), with answers bit-identical to the stateless check.
  SizeScan scan(engine_);
  for (size_t h = start; h <= m - 1; ++h) {
    ++result.theorem1_checks;
    if (scan.ExistsQualified(h)) {
      result.k = h;
      result.probe_refutations = scan.probe_refutations();
      result.full_scans = scan.full_scans();
      return result;
    }
  }
  return Status::NotFound(
      "no qualified subset of any size; no explanation exists");
}

}  // namespace moche
