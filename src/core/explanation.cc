#include "core/explanation.h"

#include <algorithm>

#include "util/string_util.h"

namespace moche {

std::vector<double> ExplanationValues(const KsInstance& inst,
                                      const Explanation& expl) {
  std::vector<double> out;
  out.reserve(expl.indices.size());
  for (size_t idx : expl.indices) out.push_back(inst.test[idx]);
  return out;
}

std::vector<double> RemoveExplanation(const KsInstance& inst,
                                      const Explanation& expl) {
  std::vector<bool> removed(inst.test.size(), false);
  for (size_t idx : expl.indices) removed[idx] = true;
  std::vector<double> out;
  out.reserve(inst.test.size() - expl.indices.size());
  for (size_t i = 0; i < inst.test.size(); ++i) {
    if (!removed[i]) out.push_back(inst.test[i]);
  }
  return out;
}

Status ValidateExplanation(const KsInstance& inst, const Explanation& expl) {
  const size_t m = inst.test.size();
  std::vector<bool> seen(m, false);
  for (size_t idx : expl.indices) {
    if (idx >= m) {
      return Status::OutOfRange(
          StrFormat("explanation index %zu out of range (m=%zu)", idx, m));
    }
    if (seen[idx]) {
      return Status::InvalidArgument(
          StrFormat("explanation index %zu repeated", idx));
    }
    seen[idx] = true;
  }
  if (expl.indices.size() >= m) {
    return Status::InvalidArgument("explanation removes the whole test set");
  }
  auto outcome = ks::Run(inst.reference, RemoveExplanation(inst, expl),
                         inst.alpha);
  MOCHE_RETURN_IF_ERROR(outcome.status());
  if (outcome->reject) {
    return Status::InvalidArgument(
        StrFormat("removal does not reverse the test: D=%.6f > p=%.6f",
                  outcome->statistic, outcome->threshold));
  }
  return Status::OK();
}

}  // namespace moche
