// Enumerating the j MOST comprehensible explanations.
//
// The paper motivates MOCHE with the Rashomon effect (Section 3.3): a
// failed KS test can have up to C(|T|, k) distinct explanations, and
// presenting all of them overwhelms the user — so MOCHE returns the single
// lexicographically smallest one. In practice an analyst often wants the
// top few alternatives ("show me three different stories"). This module
// generalises Algorithm 1 into a lexicographic DFS: at every preference
// position the include branch (feasible by Theorem 3) is explored before
// the exclude branch, which emits explanations in exactly the
// comprehensibility order of Definition 2.
//
// Worst-case exponential like any enumeration, so a check budget caps the
// work; the first result always equals Moche::Explain's output.
//
// Ownership & thread-safety: a free function borrowing caller-owned inputs;
// the DFS state is local to the call, so concurrent calls on shared
// (immutable) instances are safe.

#ifndef MOCHE_CORE_ENUMERATE_H_
#define MOCHE_CORE_ENUMERATE_H_

#include <vector>

#include "core/bounds.h"
#include "core/explanation.h"
#include "core/preference.h"
#include "util/status.h"

namespace moche {

struct EnumerateOptions {
  /// How many explanations to return (in comprehensibility order).
  size_t count = 3;
  /// Budget on Theorem 3 feasibility checks; ResourceExhausted if it runs
  /// out before `count` explanations are found (the ones found so far are
  /// reported in the error-free case only).
  size_t max_checks = 1000000;
};

/// Returns up to `options.count` explanations of the failed test, smallest
/// lexicographic (most comprehensible) first. `k` must come from phase 1.
/// Returns fewer than `count` when the instance has fewer explanations.
Result<std::vector<Explanation>> EnumerateTopExplanations(
    const BoundsEngine& engine, size_t k, const std::vector<double>& test,
    const PreferenceList& preference, const EnumerateOptions& options = {});

}  // namespace moche

#endif  // MOCHE_CORE_ENUMERATE_H_
