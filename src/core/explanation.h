// The output type of every explainer, plus validation helpers.
//
// Ownership & thread-safety: Explanation is a plain value type owning its
// index vector; the helpers are pure functions of caller-owned, unshared
// arguments and are safe to call from any thread.

#ifndef MOCHE_CORE_EXPLANATION_H_
#define MOCHE_CORE_EXPLANATION_H_

#include <cstddef>
#include <vector>

#include "core/instance.h"
#include "util/status.h"

namespace moche {

/// A counterfactual explanation: indices into the instance's test set whose
/// removal reverses the failed KS test (Definition 1). For MOCHE the indices
/// are listed in preference-list order.
struct Explanation {
  std::vector<size_t> indices;

  size_t size() const { return indices.size(); }
  bool empty() const { return indices.empty(); }
};

/// The values the explanation removes, in the order of `indices`.
std::vector<double> ExplanationValues(const KsInstance& inst,
                                      const Explanation& expl);

/// The test set with the explanation removed (arbitrary order).
std::vector<double> RemoveExplanation(const KsInstance& inst,
                                      const Explanation& expl);

/// Verifies the contract of Definition 1 mechanically: indices are valid and
/// distinct, at least one test point remains, and R vs T \ I passes the KS
/// test at the instance's alpha. (It does NOT verify minimality; use the
/// brute-force explainer for that.)
Status ValidateExplanation(const KsInstance& inst, const Explanation& expl);

}  // namespace moche

#endif  // MOCHE_CORE_EXPLANATION_H_
