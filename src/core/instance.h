// A single failed-KS-test instance: the unit of work every explainer
// (MOCHE, brute force, and all six baselines) consumes.
//
// Ownership & thread-safety: KsInstance is a plain value type owning its
// sample vectors. Explainers take it by const reference and never mutate
// it, so one instance may be read from many threads at once.

#ifndef MOCHE_CORE_INSTANCE_H_
#define MOCHE_CORE_INSTANCE_H_

#include <vector>

#include "ks/ks_test.h"
#include "util/status.h"

namespace moche {

/// A reference set R, a test set T (kept in their original order so that
/// explanation indices and preference lists are meaningful) and the
/// significance level of the KS test.
struct KsInstance {
  std::vector<double> reference;
  std::vector<double> test;
  double alpha = 0.05;
};

/// Runs the KS test on the instance (validates shapes and alpha).
inline Result<KsOutcome> RunInstance(const KsInstance& inst) {
  return ks::Run(inst.reference, inst.test, inst.alpha);
}

}  // namespace moche

#endif  // MOCHE_CORE_INSTANCE_H_
