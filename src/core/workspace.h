// ExplainWorkspace: the reusable scratch arena behind the zero-allocation
// explain pipeline.
//
// One MOCHE explanation needs a sorted copy of the test window, a
// CumulativeFrame, the BoundsEngine's flattened coefficient array, and the
// phase-2 builder/checker buffers. The one-shot entry points allocate all
// of that per call — fine for a single explanation, pure churn for the
// paper's Section 6 workloads (and the stream monitor), which explain
// thousands of windows against one prepared reference. An ExplainWorkspace
// owns every one of those buffers; Moche::ExplainPreparedInto (and friends)
// rebuild them in place, so after the first call on a given instance size
// the steady state performs no heap allocation at all. The buffers only
// ever grow (capacity is never released short of destroying the
// workspace); FootprintBytes reports the high-water mark.
//
// Ownership & thread-affinity: a workspace is mutable per-caller scratch —
// share the Moche engine and the PreparedReference across threads, never a
// workspace. The per-worker pools in harness::RunMethods and
// stream::DriftMonitor hand each worker thread its own instance. The
// internal engine/checker members borrow the workspace's own frame only
// within a single Into call (every call rebinds them before use), so moving
// a workspace between calls is safe; using one mid-call is not.

#ifndef MOCHE_CORE_WORKSPACE_H_
#define MOCHE_CORE_WORKSPACE_H_

#include <vector>

#include "core/bounds.h"
#include "core/builder.h"
#include "core/cumulative.h"
#include "ks/ks_test.h"

namespace moche {

class ExplainWorkspace {
 public:
  ExplainWorkspace() = default;

  // Scratch is cheap to move (pointers swap) but a silent deep copy of
  // multi-megabyte arenas is never what a caller wants.
  ExplainWorkspace(const ExplainWorkspace&) = delete;
  ExplainWorkspace& operator=(const ExplainWorkspace&) = delete;
  ExplainWorkspace(ExplainWorkspace&&) = default;
  ExplainWorkspace& operator=(ExplainWorkspace&&) = default;

  /// Heap bytes currently retained by the workspace's buffers (capacities,
  /// not sizes). Monotone non-decreasing across calls, so this doubles as
  /// the arena's high-water mark — DriftMonitor::stats() aggregates it as
  /// the workspace-pool footprint.
  size_t FootprintBytes() const {
    return (reference_sorted_.capacity() + test_sorted_.capacity() +
            remaining_.capacity()) *
               sizeof(double) +
           removed_.capacity() + frame_.FootprintBytes() +
           engine_.FootprintBytes() + build_.FootprintBytes() +
           ks_sweep_.FootprintBytes();
  }

 private:
  friend class Moche;

  std::vector<double> reference_sorted_;  // ExplainInto's sorted R
  std::vector<double> test_sorted_;
  ks::KsSweepScratch ks_sweep_;  // SIMD |F_R - F_T| sweep merge buffers
  CumulativeFrame frame_;
  BoundsEngine engine_;
  BuildScratch build_;
  std::vector<unsigned char> removed_;  // index mask for T \ I
  std::vector<double> remaining_;       // T \ I, then sorted
};

}  // namespace moche

#endif  // MOCHE_CORE_WORKSPACE_H_
