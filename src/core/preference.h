// Preference lists: the user-domain-knowledge input of Definition 2.
//
// A preference list is a permutation of the test-set indices [0, m); the
// point at position 0 is the user's most preferred candidate for inclusion
// in the explanation.
//
// Ownership & thread-safety: PreferenceList is a plain value vector owned
// by whoever built it. The builders and validators here are pure functions
// of their arguments (RandomPreference mutates only the caller-owned Rng),
// so any of them may run concurrently on unshared outputs.

#ifndef MOCHE_CORE_PREFERENCE_H_
#define MOCHE_CORE_PREFERENCE_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace moche {

using PreferenceList = std::vector<size_t>;

/// Checks that `pref` is a permutation of [0, m).
Status ValidatePreference(const PreferenceList& pref, size_t m);

/// As above, borrowing a caller-owned seen-mask so repeated validations of
/// same-sized lists allocate nothing once warm (the ExplainWorkspace hot
/// path). `seen` is overwritten scratch; same result as the overload above.
Status ValidatePreference(const PreferenceList& pref, size_t m,
                          std::vector<unsigned char>* seen);

/// 0, 1, 2, ... — "the user prefers earlier test points".
PreferenceList IdentityPreference(size_t m);

/// As IdentityPreference, rebuilding `out` in place (capacity reused).
void IdentityPreferenceInto(size_t m, PreferenceList* out);

/// Ranks points by descending score; ties broken by ascending index
/// (deterministic). Used with outlier scores, e.g. Spectral Residual.
/// NaN scores (possible when scores come from a user CSV) rank after every
/// real score, in index order — never undefined behavior.
PreferenceList PreferenceByScoreDesc(const std::vector<double>& scores);

/// Ranks points by ascending score; ties broken by ascending index.
/// NaN scores rank last, as in PreferenceByScoreDesc.
PreferenceList PreferenceByScoreAsc(const std::vector<double>& scores);

/// Ranks points by their own value (descending when `descending`).
PreferenceList PreferenceByValue(const std::vector<double>& values,
                                 bool descending);

/// Uniformly random total order (Section 6.4 synthetic experiments).
PreferenceList RandomPreference(size_t m, Rng* rng);

/// rank[i] = position of test point i in `pref` (the inverse permutation).
std::vector<size_t> PreferenceRanks(const PreferenceList& pref);

}  // namespace moche

#endif  // MOCHE_CORE_PREFERENCE_H_
