// Incremental Kolmogorov-Smirnov testing over a sliding window, after
// dos Reis, Flach, Matwin & Batista, "Fast unsupervised online drift
// detection using incremental Kolmogorov-Smirnov test" (KDD 2016) — the
// paper's reference [17] and the standard substrate for KS-based drift
// monitors.
//
// A fixed reference sample R (size n) is compared against a sliding test
// window W of fixed capacity m. All observations live in one treap ordered
// by value; each node carries the integer score
//     s(x) = m * C_R(x) - n * C_W(x)
// so that D(R, W) = max_x |s(x)| / (n * m). Inserting or evicting a test
// observation shifts s by -+n on a value suffix — an O(log(n+m)) lazy
// range-add — and the subtree max/min aggregates give the statistic in
// O(1). This makes each Push() O(log(n+m)) amortized instead of the
// O((n+m) log(n+m)) full re-test.
//
// Steady-state pushes are also allocation-free: evicted treap nodes go on
// an internal free list that the next insertion reuses, and the arrival
// window is a fixed ring buffer sized at Create — so once the window is
// full, a monitor draining observations performs no heap traffic at all
// (the DriftMonitor zero-allocation contract, docs/ARCHITECTURE.md).
//
// Ownership & thread-safety: a StreamingKs owns its treap and window ring
// outright (move-only; nodes freed in the destructor). Push mutates that
// state, so each detector belongs to one stream driver at a time — shared
// concurrent use requires external synchronization. DriftMonitor gives
// every stream its own detector instead of locking one.

#ifndef MOCHE_KS_STREAMING_H_
#define MOCHE_KS_STREAMING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ks/ks_test.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace moche {

class StreamingKs {
 public:
  /// `reference` is fixed for the lifetime of the detector; `window_size`
  /// is the test-window capacity m. Fails on invalid samples/sizes.
  static Result<StreamingKs> Create(const std::vector<double>& reference,
                                    size_t window_size, double alpha);

  StreamingKs(StreamingKs&&) noexcept;
  StreamingKs& operator=(StreamingKs&&) noexcept;
  ~StreamingKs();

  /// Feeds one observation. Once the window is full, the oldest
  /// observation is evicted first. Fails on non-finite values.
  Status Push(double value);

  /// True when the window holds `window_size` observations.
  bool WindowFull() const { return window_count_ == window_size_; }

  /// Current KS outcome of R vs the window contents. Requires a full
  /// window (the fixed-size scores are only calibrated for m elements).
  Result<KsOutcome> CurrentOutcome() const;

  /// Convenience: true iff the window is full and the test rejects.
  bool Drifted() const;

  /// The window contents in arrival order (oldest first) — hand this to
  /// Moche::Explain when a drift fires.
  std::vector<double> WindowContents() const;

  /// As WindowContents, rebuilding `out` in place (capacity reused): the
  /// drift monitor's per-worker snapshot buffer allocates once and is then
  /// recycled for every explanation.
  void WindowContentsInto(std::vector<double>* out) const;

  size_t reference_size() const { return n_; }
  size_t window_size() const { return window_size_; }
  double alpha() const { return alpha_; }

  /// Appends the detector's restorable state in the canonical little-endian
  /// encoding (util/binary_io.h): reference size, window capacity, alpha
  /// (bit-exact), and the surviving window observations in arrival order —
  /// O(w) values. The treap is deliberately NOT serialized: its scores are
  /// a pure function of the reference multiset and the window contents, so
  /// DeserializeState rebuilds it deterministically (src/persist's
  /// snapshot hook; docs/SNAPSHOT.md).
  void SerializeStateTo(std::string* out) const;

  /// Inverse of SerializeStateTo over an untrusted buffer. `reference`
  /// must be the same multiset the serialized detector was created over
  /// (any order — treap priorities affect only tree shape, never the
  /// statistic); size and alpha are cross-checked against the snapshot and
  /// every window value is re-validated, so a corrupted snapshot fails
  /// with a Status instead of poisoning the score arithmetic. The restored
  /// detector's CurrentOutcome is bit-identical to the serialized one's.
  static Result<StreamingKs> DeserializeState(
      const std::vector<double>& reference, bin::Reader* reader);

 private:
  struct Node;
  class Treap;

  StreamingKs(size_t n, size_t window_size, double alpha);

  // Inserts/erases one test-tagged key, maintaining the suffix scores.
  void InsertTestValue(double value);
  void EraseTestValue(double value);

  size_t n_ = 0;
  size_t window_size_ = 0;
  double alpha_ = 0.05;
  // Fixed ring buffer over the arrival order: window_[(head + i) % size]
  // is the i-th oldest surviving observation. Allocated once at Create so
  // steady-state pushes never touch the heap.
  std::vector<double> window_;
  size_t window_head_ = 0;
  size_t window_count_ = 0;
  std::unique_ptr<Treap> treap_;
};

}  // namespace moche

#endif  // MOCHE_KS_STREAMING_H_
