// The two-sample Kolmogorov-Smirnov test (paper Section 3.1).
//
// The KS statistic is D(R,T) = max_{x in R u T} |F_R(x) - F_T(x)|. The null
// hypothesis ("T is sampled from the same distribution as R") is rejected at
// significance level alpha when D exceeds the threshold
//   p = c_alpha * sqrt((n+m)/(n*m)),  c_alpha = sqrt(-ln(alpha/2)/2).
//
// Ownership & thread-safety: the free functions are pure and thread-safe;
// RemovalKs owns its union grid and is mutable per-caller scratch (not
// thread-safe — each worker builds its own).
//
// NaN/empty-sample conventions (shared with the rest of the tree, see
// docs/ARCHITECTURE.md): the Status-returning entry points reject empty
// samples and non-finite values via ValidateSample (a NaN must never reach
// std::sort — strict-weak-ordering UB); the Statistic* primitives assume
// validated input and define the degenerate cases deterministically —
// D = 1 when exactly one sample is empty (location: the smallest value of
// the non-empty sample), D = 0 and location 0.0 when both are.

#ifndef MOCHE_KS_KS_TEST_H_
#define MOCHE_KS_KS_TEST_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace moche {

/// Everything a single KS test run reports.
struct KsOutcome {
  double statistic = 0.0;    ///< D(R, T)
  double threshold = 0.0;    ///< p = c_alpha * sqrt((n+m)/(n m))
  bool reject = false;       ///< true iff D > p (the test "fails")
  double location = 0.0;     ///< an x achieving the maximum |F_R - F_T|
  size_t n = 0;              ///< |R|
  size_t m = 0;              ///< |T|
};

namespace ks {

/// Rejects empty samples and samples containing NaN/Inf values; `name` is
/// used in the error message ("reference set", ...).
Status ValidateSample(const std::vector<double>& sample, const char* name);

/// Rejects significance levels outside the domain (0, 2) of c_alpha.
Status ValidateAlpha(double alpha);

/// c_alpha = sqrt(-0.5 * ln(alpha/2)). InvalidArgument unless 0 < alpha < 2
/// (the whole public ks surface reports bad inputs through Status; it never
/// aborts).
Result<double> CriticalValue(double alpha);

/// Kolmogorov tail probability Q_KS(lambda) = 2 sum (-1)^{j-1} e^{-2j^2 l^2}.
///
/// For lambda below the crossover 1.18 the alternating series above loses
/// accuracy (its terms approach 1 and cancel), so the complementary Jacobi
/// theta expansion is used instead:
///   Q = 1 - (sqrt(2 pi)/lambda) * (t + t^9 + t^25),  t = exp(-pi^2/(8 l^2))
/// (the dual form of the same theta function; the dropped t^49 term is
/// < 1e-19 at the crossover). Both expansions agree to ~1e-15 near 1.18.
/// Returns 1.0 for lambda <= 0.
double KolmogorovQ(double lambda);

/// Asymptotic two-sample p-value for an observed statistic d:
/// Q_KS(sqrt(nm/(n+m)) * d). Rejecting when p < alpha agrees with the
/// paper's D > Threshold(alpha, n, m) rule up to the higher-order series
/// terms the one-term critical value drops (differences < ~1e-4).
/// InvalidArgument when n or m is zero.
Result<double> PValueAsymptotic(double d, size_t n, size_t m);

/// The rejection threshold p = c_alpha * sqrt((n+m)/(n*m)).
/// InvalidArgument when alpha is outside (0, 2) or n or m is zero.
Result<double> Threshold(double alpha, size_t n, size_t m);

namespace internal {

/// Precondition-based fast paths for hot loops that already validated their
/// inputs (ValidateAlpha / non-empty samples). Preconditions are checked
/// with MOCHE_DCHECK only; release builds compute garbage on bad input.
double CriticalValueUnchecked(double alpha);
double ThresholdUnchecked(double alpha, size_t n, size_t m);

}  // namespace internal

/// D(R,T) for samples that are already sorted ascending.
/// Returns 1.0 if exactly one sample is empty; 0.0 if both are. `location`
/// (when non-null) is always written: the maximizing x, or 0.0 when both
/// samples are empty and no x exists.
double StatisticSorted(const std::vector<double>& r_sorted,
                       const std::vector<double>& t_sorted,
                       double* location = nullptr);

/// Reusable merge buffers for StatisticSortedScratch: the union grid of the
/// two samples and the cumulative counts at each grid point, pre-converted
/// to double so the |F_R - F_T| sweep runs as one contiguous SIMD pass
/// (util/simd.h, ecdf_sweep_cum). Capacity persists across calls — a warm
/// scratch recycled over same-sized instances allocates nothing.
struct KsSweepScratch {
  std::vector<double> values;  ///< unique values of R u T, ascending
  std::vector<double> cum_r;   ///< #\{r in R : r <= values[k]\}
  std::vector<double> cum_t;   ///< #\{t in T : t <= values[k]\}

  /// Heap bytes retained (capacity-based, as elsewhere in the tree).
  size_t FootprintBytes() const {
    return (values.capacity() + cum_r.capacity() + cum_t.capacity()) *
           sizeof(double);
  }
};

/// As StatisticSorted, bit-identical result, but merges into `scratch` and
/// runs the sweep through the active SIMD kernel table. The hot explain
/// loops use this; one-shot callers can keep StatisticSorted (which
/// allocates nothing at all).
double StatisticSortedScratch(const std::vector<double>& r_sorted,
                              const std::vector<double>& t_sorted,
                              KsSweepScratch* scratch,
                              double* location = nullptr);

/// D(R,T) for samples in arbitrary order (sorts copies). Returns NaN (and
/// location 0.0) if either sample contains NaN — a NaN observation has no
/// rank, and handing it to std::sort would be UB, not a statistic.
double Statistic(std::vector<double> r, std::vector<double> t,
                 double* location = nullptr);

/// Runs the full three-step test. Fails with InvalidArgument when either
/// sample is empty, contains a non-finite value, or alpha is outside
/// (0, 2); inputs are validated before anything is sorted.
Result<KsOutcome> Run(std::vector<double> r, std::vector<double> t,
                      double alpha);

/// As Run, but for pre-sorted inputs (no copies, no sorting).
Result<KsOutcome> RunSorted(const std::vector<double>& r_sorted,
                            const std::vector<double>& t_sorted, double alpha);

}  // namespace ks

/// Re-tests R against T \ S for evolving removal sets S without re-sorting.
///
/// Construction is O((n+m) log(n+m)); each RemoveValue and each
/// CurrentOutcome is O(q) or better, where q is the number of unique values
/// in R u T. This is the workhorse of the greedy-style baselines, which
/// repeatedly grow a removal set and re-run the test.
class RemovalKs {
 public:
  /// Builds the union grid from (unsorted) samples. R must be non-empty and
  /// alpha must satisfy ks::ValidateAlpha — validate before constructing
  /// (the greedy baselines do); violations are caught by MOCHE_DCHECK in
  /// debug builds only.
  RemovalKs(const std::vector<double>& r, const std::vector<double>& t,
            double alpha);

  /// Marks one occurrence of `value` in T as removed.
  /// Returns InvalidArgument if all occurrences are already removed or the
  /// value does not occur in T.
  Status RemoveValue(double value);

  /// Undoes one RemoveValue of `value`.
  Status UnremoveValue(double value);

  /// Clears the removal set.
  void Reset();

  /// KS outcome of R vs T \ S for the current removal set S.
  ///
  /// When the removal set has consumed all of T (|T \ S| = 0), the outcome
  /// is the degenerate one-empty-sample convention of StatisticSorted:
  /// D = 1, reject = true, threshold = 0 (the threshold formula diverges at
  /// m = 0), location = the smallest reference value (where |F_R - F_empty|
  /// first reaches 1). Greedy callers that strip the whole test set
  /// therefore see a well-defined "still failing" result instead of a
  /// crash.
  KsOutcome CurrentOutcome() const;

  /// True iff R and T \ S pass the test at the configured alpha. False when
  /// the whole test set has been removed (see CurrentOutcome).
  bool Passes() const;

  size_t num_removed() const { return removed_total_; }
  size_t n() const { return n_; }
  size_t m() const { return m_; }
  double alpha() const { return alpha_; }

  /// The remaining test multiset T \ S (ascending).
  std::vector<double> RemainingTest() const;

 private:
  double alpha_;
  size_t n_ = 0;
  size_t m_ = 0;
  std::vector<double> values_;       // unique values of R u T, ascending
  std::vector<int64_t> count_r_;     // multiplicity of values_[i] in R
  std::vector<int64_t> count_t_;     // multiplicity of values_[i] in T
  std::vector<double> cum_r_d_;      // prefix sums of count_r_, as double
  std::vector<int64_t> removed_;     // multiplicity removed from T
  size_t removed_total_ = 0;
};

}  // namespace moche

#endif  // MOCHE_KS_KS_TEST_H_
