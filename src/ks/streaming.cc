#include "ks/streaming.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

#include "util/logging.h"
#include "util/string_util.h"

namespace moche {

namespace {
constexpr int64_t kNegInf = std::numeric_limits<int64_t>::min() / 4;
constexpr int64_t kPosInf = std::numeric_limits<int64_t>::max() / 4;
}  // namespace

// One observation. All nodes with equal key carry equal scores s, so the
// order among duplicates is immaterial.
struct StreamingKs::Node {
  double key = 0.0;
  bool is_ref = false;
  uint64_t pri = 0;
  int64_t s = 0;      // m * C_R(key) - n * C_W(key)
  int64_t lazy = 0;   // pending addition to s of the whole subtree
  int64_t smax = 0;   // subtree max of s (after lazy)
  int64_t smin = 0;
  int64_t cnt_r = 0;  // subtree count of reference nodes
  int64_t cnt_t = 0;  // subtree count of test (window) nodes
  Node* l = nullptr;
  Node* r = nullptr;
};

class StreamingKs::Treap {
 public:
  ~Treap() {
    Free(root_);
    while (free_list_ != nullptr) {
      Node* next = free_list_->l;
      delete free_list_;
      free_list_ = next;
    }
  }

  int64_t CountRefLE(double key) const { return CountLE(key).first; }
  int64_t CountTestLE(double key) const { return CountLE(key).second; }

  // Inserts a node with score `s`, shifting the scores of every node with
  // key >= `key` by `suffix_delta` first.
  void Insert(double key, bool is_ref, int64_t suffix_delta,
              int64_t self_score) {
    Node* less = nullptr;
    Node* geq = nullptr;
    SplitLT(root_, key, &less, &geq);
    AddLazy(geq, suffix_delta);
    Node* node = Acquire();
    node->key = key;
    node->is_ref = is_ref;
    node->pri = rng_();
    node->s = self_score;
    Pull(node);
    root_ = Merge(Merge(less, node), geq);
  }

  // Removes one test-tagged node with the given key (which must exist) and
  // shifts the scores of the remaining nodes with key >= `key` by
  // `suffix_delta`.
  void EraseTest(double key, int64_t suffix_delta) {
    Node* less = nullptr;
    Node* rest = nullptr;
    Node* equal = nullptr;
    Node* greater = nullptr;
    SplitLT(root_, key, &less, &rest);
    SplitLE(rest, key, &equal, &greater);
    MOCHE_CHECK(equal != nullptr && equal->cnt_t > 0);
    equal = RemoveOneTest(equal, this);
    AddLazy(equal, suffix_delta);
    AddLazy(greater, suffix_delta);
    root_ = Merge(Merge(less, equal), greater);
  }

  int64_t MaxAbsScore() const {
    if (root_ == nullptr) return 0;
    return std::max(std::abs(ScoreMax(root_)), std::abs(ScoreMin(root_)));
  }

 private:
  static int64_t ScoreMax(const Node* n) { return n->smax + n->lazy; }
  static int64_t ScoreMin(const Node* n) { return n->smin + n->lazy; }

  static void AddLazy(Node* n, int64_t delta) {
    if (n != nullptr) n->lazy += delta;
  }

  static void PushDown(Node* n) {
    if (n->lazy != 0) {
      n->s += n->lazy;
      n->smax += n->lazy;
      n->smin += n->lazy;
      AddLazy(n->l, n->lazy);
      AddLazy(n->r, n->lazy);
      n->lazy = 0;
    }
  }

  static void Pull(Node* n) {
    n->cnt_r = (n->is_ref ? 1 : 0);
    n->cnt_t = (n->is_ref ? 0 : 1);
    n->smax = n->s;
    n->smin = n->s;
    if (n->l != nullptr) {
      n->cnt_r += n->l->cnt_r;
      n->cnt_t += n->l->cnt_t;
      n->smax = std::max(n->smax, ScoreMax(n->l));
      n->smin = std::min(n->smin, ScoreMin(n->l));
    }
    if (n->r != nullptr) {
      n->cnt_r += n->r->cnt_r;
      n->cnt_t += n->r->cnt_t;
      n->smax = std::max(n->smax, ScoreMax(n->r));
      n->smin = std::min(n->smin, ScoreMin(n->r));
    }
  }

  // (keys < key, keys >= key)
  static void SplitLT(Node* n, double key, Node** less, Node** geq) {
    if (n == nullptr) {
      *less = nullptr;
      *geq = nullptr;
      return;
    }
    PushDown(n);
    if (n->key < key) {
      SplitLT(n->r, key, &n->r, geq);
      Pull(n);
      *less = n;
    } else {
      SplitLT(n->l, key, less, &n->l);
      Pull(n);
      *geq = n;
    }
  }

  // (keys <= key, keys > key)
  static void SplitLE(Node* n, double key, Node** leq, Node** greater) {
    if (n == nullptr) {
      *leq = nullptr;
      *greater = nullptr;
      return;
    }
    PushDown(n);
    if (n->key <= key) {
      SplitLE(n->r, key, &n->r, greater);
      Pull(n);
      *leq = n;
    } else {
      SplitLE(n->l, key, leq, &n->l);
      Pull(n);
      *greater = n;
    }
  }

  static Node* Merge(Node* a, Node* b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    if (a->pri < b->pri) {
      PushDown(a);
      a->r = Merge(a->r, b);
      Pull(a);
      return a;
    }
    PushDown(b);
    b->l = Merge(a, b->l);
    Pull(b);
    return b;
  }

  // One node, recycled from the free list when possible: the steady state
  // (one eviction per insertion) runs entirely off recycled nodes, so a
  // full window pushes with zero heap traffic.
  Node* Acquire() {
    if (free_list_ == nullptr) return new Node;
    Node* node = free_list_;
    free_list_ = node->l;
    *node = Node{};
    return node;
  }

  void Recycle(Node* n) {
    n->l = free_list_;
    free_list_ = n;
  }

  // Deletes one test-tagged node from the (all-equal-key) subtree.
  static Node* RemoveOneTest(Node* n, Treap* treap) {
    MOCHE_CHECK(n != nullptr);
    PushDown(n);
    if (!n->is_ref) {
      Node* merged = Merge(n->l, n->r);
      treap->Recycle(n);
      return merged;
    }
    if (n->l != nullptr && n->l->cnt_t > 0) {
      n->l = RemoveOneTest(n->l, treap);
    } else {
      MOCHE_CHECK(n->r != nullptr && n->r->cnt_t > 0);
      n->r = RemoveOneTest(n->r, treap);
    }
    Pull(n);
    return n;
  }

  // (#ref <= key, #test <= key) by treap descent.
  std::pair<int64_t, int64_t> CountLE(double key) const {
    int64_t ref = 0;
    int64_t test = 0;
    const Node* n = root_;
    while (n != nullptr) {
      if (n->key <= key) {
        ref += (n->is_ref ? 1 : 0) + (n->l != nullptr ? n->l->cnt_r : 0);
        test += (n->is_ref ? 0 : 1) + (n->l != nullptr ? n->l->cnt_t : 0);
        n = n->r;
      } else {
        n = n->l;
      }
    }
    return {ref, test};
  }

  static void Free(Node* n) {
    if (n == nullptr) return;
    Free(n->l);
    Free(n->r);
    delete n;
  }

  Node* root_ = nullptr;
  Node* free_list_ = nullptr;  // chained through Node::l
  std::mt19937_64 rng_{0x5EED5EED5EED5EEDull};
};

StreamingKs::StreamingKs(size_t n, size_t window_size, double alpha)
    : n_(n),
      window_size_(window_size),
      alpha_(alpha),
      window_(window_size, 0.0),  // ring storage, allocated once
      treap_(std::make_unique<Treap>()) {}

StreamingKs::StreamingKs(StreamingKs&&) noexcept = default;
StreamingKs& StreamingKs::operator=(StreamingKs&&) noexcept = default;
StreamingKs::~StreamingKs() = default;

Result<StreamingKs> StreamingKs::Create(const std::vector<double>& reference,
                                        size_t window_size, double alpha) {
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(reference, "reference set"));
  if (window_size == 0) {
    return Status::InvalidArgument("window size must be positive");
  }
  MOCHE_RETURN_IF_ERROR(ks::ValidateAlpha(alpha));
  StreamingKs stream(reference.size(), window_size, alpha);
  const int64_t m = static_cast<int64_t>(window_size);
  for (double v : reference) {
    // Reference insertion bumps C_R on the suffix: s += m for key >= v.
    // The new node's own score: s = m * C_R(v) - n * C_W(v), with counts
    // taken after the insertion.
    const int64_t c_r = stream.treap_->CountRefLE(v) + 1;
    const int64_t c_w = stream.treap_->CountTestLE(v);
    stream.treap_->Insert(v, /*is_ref=*/true, /*suffix_delta=*/m,
                          m * c_r - static_cast<int64_t>(stream.n_) * c_w);
  }
  return stream;
}

void StreamingKs::InsertTestValue(double value) {
  const int64_t n = static_cast<int64_t>(n_);
  const int64_t m = static_cast<int64_t>(window_size_);
  const int64_t c_r = treap_->CountRefLE(value);
  const int64_t c_w = treap_->CountTestLE(value) + 1;
  treap_->Insert(value, /*is_ref=*/false, /*suffix_delta=*/-n,
                 m * c_r - n * c_w);
}

void StreamingKs::EraseTestValue(double value) {
  treap_->EraseTest(value, /*suffix_delta=*/static_cast<int64_t>(n_));
}

Status StreamingKs::Push(double value) {
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("observation is not finite");
  }
  if (window_count_ == window_size_) {
    EraseTestValue(window_[window_head_]);
    window_head_ = (window_head_ + 1) % window_size_;
    --window_count_;
  }
  InsertTestValue(value);
  window_[(window_head_ + window_count_) % window_size_] = value;
  ++window_count_;
  return Status::OK();
}

void StreamingKs::SerializeStateTo(std::string* out) const {
  bin::AppendU64Le(static_cast<uint64_t>(n_), out);
  bin::AppendU64Le(static_cast<uint64_t>(window_size_), out);
  bin::AppendDoubleLe(alpha_, out);
  bin::AppendU64Le(static_cast<uint64_t>(window_count_), out);
  for (size_t i = 0; i < window_count_; ++i) {
    bin::AppendDoubleLe(window_[(window_head_ + i) % window_size_], out);
  }
}

Result<StreamingKs> StreamingKs::DeserializeState(
    const std::vector<double>& reference, bin::Reader* reader) {
  uint64_t n = 0;
  uint64_t window_size = 0;
  double alpha = 0.0;
  uint64_t window_count = 0;
  if (!reader->ReadU64Le(&n) || !reader->ReadU64Le(&window_size) ||
      !reader->ReadDoubleLe(&alpha) || !reader->ReadU64Le(&window_count)) {
    return Status::InvalidArgument(
        "streaming detector: snapshot truncated in the state header");
  }
  if (n != reference.size()) {
    return Status::InvalidArgument(
        StrFormat("streaming detector: snapshot was taken over a reference "
                  "of %llu values, restore got %zu",
                  static_cast<unsigned long long>(n), reference.size()));
  }
  if (window_count > window_size) {
    return Status::InvalidArgument(StrFormat(
        "streaming detector: snapshot window holds %llu of %llu values",
        static_cast<unsigned long long>(window_count),
        static_cast<unsigned long long>(window_size)));
  }
  if (window_count > reader->remaining() / 8) {
    return Status::InvalidArgument(
        "streaming detector: snapshot truncated inside the window ring");
  }
  // Create re-validates the reference sample, window size, and alpha, then
  // replaying the ring in arrival order rebuilds the treap (scores are a
  // pure function of the multisets; priorities only shape the tree).
  MOCHE_ASSIGN_OR_RETURN(
      StreamingKs stream,
      Create(reference, static_cast<size_t>(window_size), alpha));
  for (uint64_t i = 0; i < window_count; ++i) {
    double value = 0.0;
    reader->ReadDoubleLe(&value);  // bounded above; cannot fail
    MOCHE_RETURN_IF_ERROR(stream.Push(value));
  }
  return stream;
}

std::vector<double> StreamingKs::WindowContents() const {
  std::vector<double> out;
  WindowContentsInto(&out);
  return out;
}

void StreamingKs::WindowContentsInto(std::vector<double>* out) const {
  out->clear();
  out->reserve(window_count_);
  for (size_t i = 0; i < window_count_; ++i) {
    out->push_back(window_[(window_head_ + i) % window_size_]);
  }
}

Result<KsOutcome> StreamingKs::CurrentOutcome() const {
  if (!WindowFull()) {
    return Status::InvalidArgument(
        StrFormat("window holds %zu of %zu observations", window_count_,
                  window_size_));
  }
  KsOutcome out;
  out.n = n_;
  out.m = window_size_;
  out.statistic = static_cast<double>(treap_->MaxAbsScore()) /
                  (static_cast<double>(n_) * static_cast<double>(window_size_));
  // alpha / sizes were validated by StreamingKs::Create.
  out.threshold = ks::internal::ThresholdUnchecked(alpha_, n_, window_size_);
  out.reject = out.statistic > out.threshold;
  return out;
}

bool StreamingKs::Drifted() const {
  if (!WindowFull()) return false;
  auto outcome = CurrentOutcome();
  return outcome.ok() && outcome->reject;
}

}  // namespace moche
