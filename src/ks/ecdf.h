// Empirical cumulative distribution functions.
//
// Ownership & thread-safety: an Ecdf owns a sorted copy of its sample and
// is immutable after construction — concurrent Evaluate calls on a shared
// instance are safe. EcdfRmse is a pure function of caller-owned samples.

#ifndef MOCHE_KS_ECDF_H_
#define MOCHE_KS_ECDF_H_

#include <cstddef>
#include <vector>

namespace moche {

/// The empirical CDF of a finite sample: F(x) = |{v in sample : v <= x}| / n.
///
/// Construction sorts a copy of the sample once; evaluation is a binary
/// search. The sample must be non-empty for Evaluate to be meaningful.
///
/// A sample containing NaN has no order statistics — and handing NaN to
/// std::sort is undefined behavior (operator< on NaN is not a strict weak
/// order). Such a sample poisons the Ecdf: construction skips the sort and
/// Evaluate always returns NaN.
class Ecdf {
 public:
  /// Builds from an arbitrary-order sample (copied and sorted).
  explicit Ecdf(std::vector<double> sample);

  /// F(x): fraction of sample points <= x. Returns NaN for an empty sample
  /// (no distribution function exists; 0 would be a valid CDF value) and
  /// for a sample that contained NaN.
  double Evaluate(double x) const;

  /// Number of sample points.
  size_t size() const { return sorted_.size(); }

  /// The sample in ascending order. Unspecified order if the sample
  /// contained NaN (see class comment).
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
  bool has_nan_ = false;
};

/// Root mean square error between the ECDFs of two samples, evaluated at
/// every point of the merged multiset (n + m evaluation points, repeats
/// included), as used by the paper's effectiveness metric (Section 6.3):
///   RMSE = sqrt( sum_{x in R (+) T'} (F_R(x) - F_T'(x))^2 / (|R| + |T'|) ).
/// Inputs may be in any order. Returns NaN if either sample is empty — the
/// error against a nonexistent ECDF is undefined, and the old 0.0 read as
/// "distributions identical".
double EcdfRmse(const std::vector<double>& r, const std::vector<double>& t);

}  // namespace moche

#endif  // MOCHE_KS_ECDF_H_
