#include "ks/ecdf.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace moche {

namespace {

bool ContainsNan(const std::vector<double>& v) {
  for (double x : v) {
    if (std::isnan(x)) return true;
  }
  return false;
}

}  // namespace

Ecdf::Ecdf(std::vector<double> sample)
    : sorted_(std::move(sample)), has_nan_(ContainsNan(sorted_)) {
  // std::sort on a NaN-bearing range is undefined behavior (operator< is
  // not a strict weak order over NaN), so a poisoned sample is left
  // unsorted and Evaluate reports NaN instead.
  if (has_nan_) return;
  // moche-lint: allow(sort-doubles): range screened NaN-free above
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::Evaluate(double x) const {
  // An empty sample has no distribution function; 0.0 would silently read
  // as "F(x) = 0 everywhere", which is a valid CDF value.
  if (sorted_.empty() || has_nan_) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EcdfRmse(const std::vector<double>& r, const std::vector<double>& t) {
  // 0.0 here would silently read as "distributions identical"; there is no
  // ECDF to compare against on an empty side, so the error is undefined.
  if (r.empty() || t.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // A NaN observation has no rank: sorting it is UB and the merge walk
  // below would spin forever on `rs[i] == x` never holding. Poison the
  // metric instead.
  if (ContainsNan(r) || ContainsNan(t)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  std::vector<double> rs = r;
  std::vector<double> ts = t;
  // moche-lint: allow(sort-doubles): range screened NaN-free above
  std::sort(rs.begin(), rs.end());
  // moche-lint: allow(sort-doubles): range screened NaN-free above
  std::sort(ts.begin(), ts.end());
  const double n = static_cast<double>(rs.size());
  const double m = static_cast<double>(ts.size());

  // Walk the merged multiset; at each evaluation point both ECDFs are the
  // counts of elements <= that point.
  double sum_sq = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < rs.size() || j < ts.size()) {
    double x;
    if (j >= ts.size() || (i < rs.size() && rs[i] <= ts[j])) {
      x = rs[i];
    } else {
      x = ts[j];
    }
    size_t reps = 0;
    while (i < rs.size() && rs[i] == x) {
      ++i;
      ++reps;
    }
    while (j < ts.size() && ts[j] == x) {
      ++j;
      ++reps;
    }
    const double fr = static_cast<double>(i) / n;
    const double ft = static_cast<double>(j) / m;
    sum_sq += static_cast<double>(reps) * (fr - ft) * (fr - ft);
  }
  return std::sqrt(sum_sq / (n + m));
}

}  // namespace moche
