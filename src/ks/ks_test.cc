#include "ks/ks_test.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/simd.h"
#include "util/string_util.h"

namespace moche {
namespace ks {

namespace internal {

double CriticalValueUnchecked(double alpha) {
  MOCHE_DCHECK(alpha > 0.0 && alpha < 2.0);
  return std::sqrt(-0.5 * std::log(alpha / 2.0));
}

double ThresholdUnchecked(double alpha, size_t n, size_t m) {
  MOCHE_DCHECK(n > 0 && m > 0);
  const double dn = static_cast<double>(n);
  const double dm = static_cast<double>(m);
  return CriticalValueUnchecked(alpha) * std::sqrt((dn + dm) / (dn * dm));
}

}  // namespace internal

Status ValidateAlpha(double alpha) {
  if (!(alpha > 0.0 && alpha < 2.0)) {
    return Status::InvalidArgument(
        StrFormat("alpha must be in (0, 2), got %g", alpha));
  }
  return Status::OK();
}

Result<double> CriticalValue(double alpha) {
  MOCHE_RETURN_IF_ERROR(ValidateAlpha(alpha));
  return internal::CriticalValueUnchecked(alpha);
}

double KolmogorovQ(double lambda) {
  if (!(lambda > 0.0)) return 1.0;
  // Below the crossover the alternating series' terms approach 1 and cancel
  // catastrophically (at lambda = 0.3 the true Q is 1 - 9e-5 but the series
  // needs ~1/lambda terms of alternating near-unit magnitude). The dual
  // Jacobi theta form converges fastest exactly there: t < 0.42 below the
  // crossover, so three terms (t, t^9, t^25) leave a t^49 < 1e-19 tail.
  // 1.18 is the classic handover point where both expansions need only a
  // handful of terms and agree to ~1e-15.
  constexpr double kCrossover = 1.18;
  if (lambda < kCrossover) {
    constexpr double kPiSqOver8 = 1.2337005501361697;  // pi^2 / 8
    constexpr double kSqrt2Pi = 2.5066282746310002;    // sqrt(2 pi)
    const double t = std::exp(-kPiSqOver8 / (lambda * lambda));
    if (t == 0.0) return 1.0;  // underflow: Q rounds to 1 exactly
    const double t2 = t * t;
    const double t4 = t2 * t2;
    const double t8 = t4 * t4;
    const double p = (kSqrt2Pi / lambda) * (t + t8 * t + t8 * t8 * t8 * t);
    return std::clamp(1.0 - p, 0.0, 1.0);
  }
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-16) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

Result<double> PValueAsymptotic(double d, size_t n, size_t m) {
  if (n == 0 || m == 0) {
    return Status::InvalidArgument(
        StrFormat("sample sizes must be positive, got n=%zu m=%zu", n, m));
  }
  const double dn = static_cast<double>(n);
  const double dm = static_cast<double>(m);
  return KolmogorovQ(d * std::sqrt(dn * dm / (dn + dm)));
}

Result<double> Threshold(double alpha, size_t n, size_t m) {
  MOCHE_RETURN_IF_ERROR(ValidateAlpha(alpha));
  if (n == 0 || m == 0) {
    return Status::InvalidArgument(
        StrFormat("sample sizes must be positive, got n=%zu m=%zu", n, m));
  }
  return internal::ThresholdUnchecked(alpha, n, m);
}

double StatisticSorted(const std::vector<double>& r_sorted,
                       const std::vector<double>& t_sorted, double* location) {
  if (r_sorted.empty() && t_sorted.empty()) {
    // No x exists; write a deterministic sentinel so callers that always
    // read *location never see an uninitialized value.
    if (location != nullptr) *location = 0.0;
    return 0.0;
  }
  if (r_sorted.empty() || t_sorted.empty()) {
    if (location != nullptr) {
      *location = r_sorted.empty() ? t_sorted.front() : r_sorted.front();
    }
    return 1.0;
  }
  const double n = static_cast<double>(r_sorted.size());
  const double m = static_cast<double>(t_sorted.size());
  double best = 0.0;
  double best_x = r_sorted.front();
  size_t i = 0;
  size_t j = 0;
  while (i < r_sorted.size() || j < t_sorted.size()) {
    double x;
    if (j >= t_sorted.size() ||
        (i < r_sorted.size() && r_sorted[i] <= t_sorted[j])) {
      x = r_sorted[i];
    } else {
      x = t_sorted[j];
    }
    while (i < r_sorted.size() && r_sorted[i] == x) ++i;
    while (j < t_sorted.size() && t_sorted[j] == x) ++j;
    const double d =
        std::fabs(static_cast<double>(i) / n - static_cast<double>(j) / m);
    if (d > best) {
      best = d;
      best_x = x;
    }
  }
  if (location != nullptr) *location = best_x;
  return best;
}

double StatisticSortedScratch(const std::vector<double>& r_sorted,
                              const std::vector<double>& t_sorted,
                              KsSweepScratch* scratch, double* location) {
  if (r_sorted.empty() || t_sorted.empty()) {
    // Degenerate conventions live in one place.
    return StatisticSorted(r_sorted, t_sorted, location);
  }
  const size_t nr = r_sorted.size();
  const size_t nt = t_sorted.size();
  scratch->values.clear();
  scratch->cum_r.clear();
  scratch->cum_t.clear();
  scratch->values.reserve(nr + nt);
  scratch->cum_r.reserve(nr + nt);
  scratch->cum_t.reserve(nr + nt);
  size_t i = 0;
  size_t j = 0;
  while (i < nr || j < nt) {
    double x;
    if (j >= nt || (i < nr && r_sorted[i] <= t_sorted[j])) {
      x = r_sorted[i];
    } else {
      x = t_sorted[j];
    }
    while (i < nr && r_sorted[i] == x) ++i;
    while (j < nt && t_sorted[j] == x) ++j;
    scratch->values.push_back(x);
    // Exact conversions (counts are far below 2^53), so the kernel's
    // cum/n division sees the very same doubles StatisticSorted divides.
    scratch->cum_r.push_back(static_cast<double>(i));
    scratch->cum_t.push_back(static_cast<double>(j));
  }
  size_t best_index = SIZE_MAX;
  const double best = simd::ActiveKernels().ecdf_sweep_cum(
      scratch->cum_r.data(), scratch->cum_t.data(), scratch->values.size(),
      static_cast<double>(nr), static_cast<double>(nt), &best_index);
  if (location != nullptr) {
    // The kernel leaves best_index alone when every |F_R - F_T| is zero —
    // mirror StatisticSorted's front-value convention then.
    *location =
        best_index == SIZE_MAX ? r_sorted.front() : scratch->values[best_index];
  }
  return best;
}

double Statistic(std::vector<double> r, std::vector<double> t,
                 double* location) {
  // Screen before sorting: std::sort on a NaN-bearing range is UB. (Inf is
  // fine here — it has a rank; only Run/ValidateSample reject it.)
  for (const std::vector<double>* s : {&r, &t}) {
    for (double v : *s) {
      if (std::isnan(v)) {
        if (location != nullptr) *location = 0.0;
        return std::numeric_limits<double>::quiet_NaN();
      }
    }
  }
  // moche-lint: allow(sort-doubles): ranges screened NaN-free above
  std::sort(r.begin(), r.end());
  // moche-lint: allow(sort-doubles): ranges screened NaN-free above
  std::sort(t.begin(), t.end());
  return StatisticSorted(r, t, location);
}

Status ValidateSample(const std::vector<double>& sample, const char* name) {
  if (sample.empty()) {
    return Status::InvalidArgument(StrFormat("%s is empty", name));
  }
  if (!simd::ActiveKernels().all_finite(sample.data(), sample.size())) {
    return Status::InvalidArgument(
        StrFormat("%s contains a non-finite value", name));
  }
  return Status::OK();
}

Result<KsOutcome> RunSorted(const std::vector<double>& r_sorted,
                            const std::vector<double>& t_sorted,
                            double alpha) {
  MOCHE_RETURN_IF_ERROR(ValidateSample(r_sorted, "reference set"));
  MOCHE_RETURN_IF_ERROR(ValidateSample(t_sorted, "test set"));
  MOCHE_RETURN_IF_ERROR(ValidateAlpha(alpha));
  KsOutcome out;
  out.n = r_sorted.size();
  out.m = t_sorted.size();
  out.statistic = StatisticSorted(r_sorted, t_sorted, &out.location);
  out.threshold = internal::ThresholdUnchecked(alpha, out.n, out.m);
  out.reject = out.statistic > out.threshold;
  return out;
}

Result<KsOutcome> Run(std::vector<double> r, std::vector<double> t,
                      double alpha) {
  // Validate before sorting — a NaN must never reach std::sort (UB).
  // RunSorted re-validates; all_finite is one cheap SIMD pass.
  MOCHE_RETURN_IF_ERROR(ValidateSample(r, "reference set"));
  MOCHE_RETURN_IF_ERROR(ValidateSample(t, "test set"));
  // moche-lint: allow(sort-doubles): ranges validated finite above
  std::sort(r.begin(), r.end());
  // moche-lint: allow(sort-doubles): ranges validated finite above
  std::sort(t.begin(), t.end());
  return RunSorted(r, t, alpha);
}

}  // namespace ks

RemovalKs::RemovalKs(const std::vector<double>& r,
                     const std::vector<double>& t, double alpha)
    : alpha_(alpha), n_(r.size()), m_(t.size()) {
  MOCHE_DCHECK(ks::ValidateAlpha(alpha).ok());
  MOCHE_DCHECK(!r.empty());
  std::vector<double> rs = r;
  std::vector<double> ts = t;
  // moche-lint: allow(sort-doubles): documented precondition — callers validate via ks::ValidateSample
  std::sort(rs.begin(), rs.end());
  // moche-lint: allow(sort-doubles): documented precondition — callers validate via ks::ValidateSample
  std::sort(ts.begin(), ts.end());
  size_t i = 0;
  size_t j = 0;
  while (i < rs.size() || j < ts.size()) {
    double x;
    if (j >= ts.size() || (i < rs.size() && rs[i] <= ts[j])) {
      x = rs[i];
    } else {
      x = ts[j];
    }
    int64_t cr = 0;
    int64_t ct = 0;
    while (i < rs.size() && rs[i] == x) {
      ++i;
      ++cr;
    }
    while (j < ts.size() && ts[j] == x) {
      ++j;
      ++ct;
    }
    values_.push_back(x);
    count_r_.push_back(cr);
    count_t_.push_back(ct);
  }
  removed_.assign(values_.size(), 0);
  // The reference side never changes, so its cumulative counts are
  // precomputed once, already converted to double (exactly — counts are far
  // below 2^53), and every CurrentOutcome streams them straight into the
  // SIMD sweep.
  cum_r_d_.resize(values_.size());
  int64_t cum_r = 0;
  for (size_t k = 0; k < values_.size(); ++k) {
    cum_r += count_r_[k];
    cum_r_d_[k] = static_cast<double>(cum_r);
  }
}

Status RemovalKs::RemoveValue(double value) {
  const auto it = std::lower_bound(values_.begin(), values_.end(), value);
  if (it == values_.end() || *it != value) {
    return Status::InvalidArgument("value not present in the union grid");
  }
  const size_t idx = static_cast<size_t>(it - values_.begin());
  if (removed_[idx] >= count_t_[idx]) {
    return Status::InvalidArgument(
        "all occurrences of this value in T are already removed");
  }
  ++removed_[idx];
  ++removed_total_;
  return Status::OK();
}

Status RemovalKs::UnremoveValue(double value) {
  const auto it = std::lower_bound(values_.begin(), values_.end(), value);
  if (it == values_.end() || *it != value) {
    return Status::InvalidArgument("value not present in the union grid");
  }
  const size_t idx = static_cast<size_t>(it - values_.begin());
  if (removed_[idx] == 0) {
    return Status::InvalidArgument("no removed occurrence of this value");
  }
  --removed_[idx];
  --removed_total_;
  return Status::OK();
}

void RemovalKs::Reset() {
  std::fill(removed_.begin(), removed_.end(), 0);
  removed_total_ = 0;
}

KsOutcome RemovalKs::CurrentOutcome() const {
  KsOutcome out;
  out.n = n_;
  out.m = m_ - removed_total_;
  if (removed_total_ >= m_) {
    // The removal set consumed all of T. Mirror StatisticSorted's
    // one-empty-sample convention (D = 1, reject, location = the smallest
    // reference value, where |F_R - F_empty| first reaches 1); the
    // threshold formula diverges at m = 0, so report the degenerate
    // threshold 0.
    out.statistic = 1.0;
    out.threshold = 0.0;
    out.reject = true;
    out.location = 0.0;
    for (size_t i = 0; i < values_.size(); ++i) {
      if (count_r_[i] > 0) {
        out.location = values_[i];
        break;
      }
    }
    return out;
  }
  const double n = static_cast<double>(n_);
  const double m_rem = static_cast<double>(m_ - removed_total_);
  // The kernel prefix-sums count_t - removed in-register and divides the
  // cumulative counts exactly as the scalar loop did — bit-identical, with
  // the same first-strict-max location semantics (best_index is left alone
  // when every |F_R - F_T| is zero, mirroring the front-value convention).
  size_t best_index = SIZE_MAX;
  const double best = simd::ActiveKernels().ecdf_sweep_counts(
      cum_r_d_.data(), count_t_.data(), removed_.data(), values_.size(), n,
      m_rem, &best_index);
  out.statistic = best;
  out.location = best_index == SIZE_MAX
                     ? (values_.empty() ? 0.0 : values_.front())
                     : values_[best_index];
  out.threshold = ks::internal::ThresholdUnchecked(alpha_, n_,
                                                   m_ - removed_total_);
  out.reject = out.statistic > out.threshold;
  return out;
}

bool RemovalKs::Passes() const { return !CurrentOutcome().reject; }

std::vector<double> RemovalKs::RemainingTest() const {
  std::vector<double> out;
  out.reserve(m_ - removed_total_);
  for (size_t i = 0; i < values_.size(); ++i) {
    for (int64_t c = 0; c < count_t_[i] - removed_[i]; ++c) {
      out.push_back(values_[i]);
    }
  }
  return out;
}

}  // namespace moche
