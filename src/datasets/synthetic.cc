#include "datasets/synthetic.h"

#include "util/rng.h"
#include "util/string_util.h"

namespace moche {
namespace datasets {

Result<KsInstance> MakeKiferDriftInstance(const DriftOptions& options) {
  if (options.size < 4) {
    return Status::InvalidArgument("size must be at least 4");
  }
  if (options.contamination < 0.0 || options.contamination > 1.0) {
    return Status::InvalidArgument("contamination must be in [0, 1]");
  }
  Rng rng(options.seed);
  const size_t replaced = static_cast<size_t>(
      options.contamination * static_cast<double>(options.size));

  for (size_t attempt = 0; attempt < options.max_attempts; ++attempt) {
    KsInstance inst;
    inst.alpha = options.alpha;
    inst.reference.reserve(options.size);
    inst.test.reserve(options.size);
    for (size_t i = 0; i < options.size; ++i) {
      inst.reference.push_back(rng.Normal());
      inst.test.push_back(rng.Normal());
    }
    // Replace the first `replaced` positions, then shuffle-position them by
    // sampling indices, so the contamination is spread over the window.
    const std::vector<size_t> positions =
        rng.SampleWithoutReplacement(options.size, replaced);
    for (size_t pos : positions) {
      inst.test[pos] = rng.Uniform(options.uniform_lo, options.uniform_hi);
    }
    auto outcome = RunInstance(inst);
    MOCHE_RETURN_IF_ERROR(outcome.status());
    if (outcome->reject) return inst;
  }
  return Status::ResourceExhausted(
      StrFormat("no failing instance after %zu attempts (w=%zu, p=%.3f)",
                options.max_attempts, options.size, options.contamination));
}

}  // namespace datasets
}  // namespace moche
