#include "datasets/covid.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace moche {
namespace datasets {

namespace {

constexpr int kNumAgeGroups = 10;
constexpr int kNumHa = 5;

// Relative August age-group frequencies, shaped after the paper's
// Figure 1a: the bulk of cases in the 20-40 bins, a thin senior tail.
constexpr double kAugustAgeFreq[kNumAgeGroups] = {
    0.040, 0.095, 0.225, 0.175, 0.130, 0.120, 0.105, 0.060, 0.033, 0.017};

// September shifts mass into the middle (30-60) and senior (70-80) groups —
// the pattern the case study attributes to the Fraser HA outbreak. The
// shift strength is calibrated so MOCHE's explanation size lands near the
// paper's 291 points (~8.6 % of |T|); see the covid_test calibration test.
constexpr double kSeptemberAgeFreq[kNumAgeGroups] = {
    0.033, 0.079, 0.179, 0.198, 0.157, 0.139, 0.105, 0.063, 0.033, 0.014};

// HA shares of the baseline caseload (population-ordered, FHA largest).
constexpr double kAugustHaFreq[kNumHa] = {0.42, 0.27, 0.12, 0.11, 0.08};

// In September the excess is concentrated in FHA.
constexpr double kSeptemberHaFreq[kNumHa] = {0.52, 0.22, 0.10, 0.09, 0.07};

// Deterministically expands target fractions into exact per-bin counts that
// sum to `total` (largest-remainder rounding), so the KS geometry of the
// instance — and therefore the explanation size — is stable across runs.
std::vector<size_t> Apportion(const double* freq, int bins, size_t total) {
  std::vector<size_t> counts(bins, 0);
  std::vector<std::pair<double, int>> remainders;
  size_t assigned = 0;
  for (int b = 0; b < bins; ++b) {
    const double exact = freq[b] * static_cast<double>(total);
    counts[b] = static_cast<size_t>(exact);
    assigned += counts[b];
    remainders.push_back({exact - static_cast<double>(counts[b]), b});
  }
  // moche-lint: allow(sort-doubles): remainders are fractional parts of finite bin counts, in [0, 1)
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (size_t i = 0; assigned < total; ++i, ++assigned) {
    ++counts[remainders[i % remainders.size()].second];
  }
  return counts;
}

}  // namespace

const char* HealthAuthorityName(HealthAuthority ha) {
  switch (ha) {
    case HealthAuthority::kFHA:
      return "FHA";
    case HealthAuthority::kVCHA:
      return "VCHA";
    case HealthAuthority::kNHA:
      return "NHA";
    case HealthAuthority::kIHA:
      return "IHA";
    case HealthAuthority::kVIHA:
      return "VIHA";
  }
  return "?";
}

CovidData MakeCovidData(const CovidOptions& options) {
  Rng rng(options.seed);
  CovidData data;

  auto build_month = [&](const double* age_freq, const double* ha_freq,
                         size_t total, std::vector<int>* ages,
                         std::vector<HealthAuthority>* has) {
    const std::vector<size_t> age_counts =
        Apportion(age_freq, kNumAgeGroups, total);
    for (int g = 0; g < kNumAgeGroups; ++g) {
      const std::vector<size_t> ha_counts =
          Apportion(ha_freq, kNumHa, age_counts[g]);
      for (int h = 0; h < kNumHa; ++h) {
        for (size_t c = 0; c < ha_counts[h]; ++c) {
          ages->push_back(g + 1);
          has->push_back(static_cast<HealthAuthority>(h));
        }
      }
    }
    // Shuffle case order (reporting order is arbitrary); ages/HAs stay
    // paired.
    std::vector<size_t> perm(ages->size());
    std::iota(perm.begin(), perm.end(), size_t{0});
    rng.Shuffle(&perm);
    std::vector<int> shuffled_ages(ages->size());
    std::vector<HealthAuthority> shuffled_has(ages->size());
    for (size_t i = 0; i < perm.size(); ++i) {
      shuffled_ages[i] = (*ages)[perm[i]];
      shuffled_has[i] = (*has)[perm[i]];
    }
    *ages = std::move(shuffled_ages);
    *has = std::move(shuffled_has);
  };

  build_month(kAugustAgeFreq, kAugustHaFreq, options.august_cases,
              &data.august_age, &data.august_ha);
  build_month(kSeptemberAgeFreq, kSeptemberHaFreq, options.september_cases,
              &data.september_age, &data.september_ha);
  return data;
}

KsInstance CovidData::MakeInstance(double alpha) const {
  KsInstance inst;
  inst.alpha = alpha;
  inst.reference.reserve(august_age.size());
  for (int a : august_age) inst.reference.push_back(static_cast<double>(a));
  inst.test.reserve(september_age.size());
  for (int a : september_age) inst.test.push_back(static_cast<double>(a));
  return inst;
}

PreferenceList CovidData::PreferenceByHaPopulationDesc() const {
  // HA enum values are already population-descending.
  std::vector<double> keys(september_ha.size());
  for (size_t i = 0; i < september_ha.size(); ++i) {
    keys[i] = -static_cast<double>(static_cast<int>(september_ha[i]));
  }
  return PreferenceByScoreDesc(keys);
}

PreferenceList CovidData::PreferenceByAgeGroupDesc() const {
  std::vector<double> keys(september_age.size());
  for (size_t i = 0; i < september_age.size(); ++i) {
    keys[i] = static_cast<double>(september_age[i]);
  }
  return PreferenceByScoreDesc(keys);
}

std::vector<double> CovidData::AgeHistogram(const std::vector<int>& ages) {
  std::vector<double> hist(kNumAgeGroups, 0.0);
  for (int a : ages) {
    MOCHE_CHECK(a >= 1 && a <= kNumAgeGroups);
    hist[a - 1] += 1.0;
  }
  const double total = std::max<double>(1.0, static_cast<double>(ages.size()));
  for (double& h : hist) h /= total;
  return hist;
}

std::vector<size_t> CovidData::HaCounts(
    const std::vector<size_t>& indices) const {
  std::vector<size_t> counts(kNumHa, 0);
  for (size_t idx : indices) {
    MOCHE_CHECK(idx < september_ha.size());
    ++counts[static_cast<int>(september_ha[idx])];
  }
  return counts;
}

std::vector<size_t> CovidData::AgeCounts(
    const std::vector<size_t>& indices) const {
  std::vector<size_t> counts(kNumAgeGroups, 0);
  for (size_t idx : indices) {
    MOCHE_CHECK(idx < september_age.size());
    ++counts[september_age[idx] - 1];
  }
  return counts;
}

}  // namespace datasets
}  // namespace moche
