// Synthetic stand-in for the BC CDC COVID-19 case dataset of the paper's
// Examples 1-2 and case study (Section 6.3). The real case file is not
// redistributable; this generator reproduces its structure exactly:
//  * 10 ordinal age groups encoded 1..10 (0-10, 10-19, ..., 90+),
//  * 5 health authorities (HAs) ordered by population with FHA largest,
//  * 2,175 August (reference) cases and 3,375 September (test) cases,
//  * a September age-distribution shift concentrated in middle/senior ages
//    and in FHA, large enough that the KS test fails at alpha = 0.05 and
//    the MOCHE explanation has ~291 points (~8.6 % of |T|), matching the
//    numbers the paper reports.
// The substitution preserves behaviour because only the failing-window
// geometry (where and how strongly the KS test rejects) enters the
// algorithm, not the raw epidemiological values.
//
// Ownership & thread-safety: MakeCovidData is a pure function of its
// options — every call derives its own deterministic Rng from the seed and
// returns a freshly owned CovidData value; concurrent calls never share
// state.

#ifndef MOCHE_DATASETS_COVID_H_
#define MOCHE_DATASETS_COVID_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/preference.h"
#include "util/rng.h"

namespace moche {
namespace datasets {

/// The five BC health authorities in the paper's Figure 1b axis order
/// (population descending).
enum class HealthAuthority : int {
  kFHA = 0,   ///< Fraser
  kVCHA = 1,  ///< Vancouver Coastal
  kNHA = 2,   ///< Northern
  kIHA = 3,   ///< Interior
  kVIHA = 4,  ///< Vancouver Island
};

/// Short display name ("FHA", ...).
const char* HealthAuthorityName(HealthAuthority ha);

struct CovidOptions {
  uint64_t seed = 2020;
  size_t august_cases = 2175;    ///< |R| in the paper
  size_t september_cases = 3375; ///< |T| in the paper
};

/// The generated two-month case data.
struct CovidData {
  std::vector<int> august_age;       ///< age group 1..10 per August case
  std::vector<HealthAuthority> august_ha;
  std::vector<int> september_age;    ///< age group 1..10 per September case
  std::vector<HealthAuthority> september_ha;

  /// KS instance: reference = August ages, test = September ages.
  KsInstance MakeInstance(double alpha = 0.05) const;

  /// L_p of Example 2: cases sorted by the population of their HA
  /// (descending); cases within an HA in generation order (the paper sorts
  /// ties arbitrarily).
  PreferenceList PreferenceByHaPopulationDesc() const;

  /// L_a of Example 2: cases sorted by age group (descending), ties in
  /// generation order.
  PreferenceList PreferenceByAgeGroupDesc() const;

  /// Relative frequency histogram over the 10 age groups (index 0 = group 1).
  static std::vector<double> AgeHistogram(const std::vector<int>& ages);

  /// Counts per HA for a subset of September cases given by indices.
  std::vector<size_t> HaCounts(const std::vector<size_t>& indices) const;

  /// Counts per age group (index 0 = group 1) for a subset of September
  /// cases given by indices.
  std::vector<size_t> AgeCounts(const std::vector<size_t>& indices) const;
};

/// Builds the dataset. Deterministic for a fixed seed.
CovidData MakeCovidData(const CovidOptions& options = {});

}  // namespace datasets
}  // namespace moche

#endif  // MOCHE_DATASETS_COVID_H_
