// The paper's synthetic scalability workload (Section 6.4, after Kifer et
// al. [24]): R and T both drawn from N(0,1) with the same size w, then a
// p-fraction of T replaced by samples from U[-7, 7], so that R and T fail
// the KS test at alpha = 0.05.
//
// Ownership & thread-safety: MakeKiferDriftInstance is a pure function of
// its options; each call owns a local seed-derived Rng and returns a fresh
// KsInstance by value, so concurrent calls never share state.

#ifndef MOCHE_DATASETS_SYNTHETIC_H_
#define MOCHE_DATASETS_SYNTHETIC_H_

#include <cstdint>

#include "core/instance.h"
#include "util/status.h"

namespace moche {
namespace datasets {

struct DriftOptions {
  size_t size = 10000;          ///< w = |R| = |T|
  double contamination = 0.03;  ///< p: fraction of T replaced
  double alpha = 0.05;
  double uniform_lo = -7.0;
  double uniform_hi = 7.0;
  uint64_t seed = 1;
  /// Number of re-draws allowed until the instance actually fails the test.
  size_t max_attempts = 50;
};

/// Generates one failing instance; ResourceExhausted if max_attempts random
/// draws never fail the test (possible for tiny contamination).
Result<KsInstance> MakeKiferDriftInstance(const DriftOptions& options = {});

}  // namespace datasets
}  // namespace moche

#endif  // MOCHE_DATASETS_SYNTHETIC_H_
