// Empirical probability mass function for discrete-valued data — used by
// Extended-D3 on the COVID-like dataset, where the paper replaces KDE with
// empirical PMFs (Section 6.1.2).
//
// Ownership & thread-safety: an EmpiricalPmf owns its value/probability
// tables and is immutable after Fit — concurrent Evaluate calls on one
// shared instance are safe.

#ifndef MOCHE_DENSITY_EMPIRICAL_PMF_H_
#define MOCHE_DENSITY_EMPIRICAL_PMF_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace moche {
namespace density {

/// P(X = v) estimated by relative frequency over a finite sample.
class EmpiricalPmf {
 public:
  /// Fails on an empty sample or one containing non-finite values (NaN
  /// would make the internal sort UB; see KDE's matching contract).
  static Result<EmpiricalPmf> Fit(const std::vector<double>& sample);

  /// Relative frequency of exactly `x` (0 for unseen values).
  double Evaluate(double x) const;

  /// Number of distinct values observed.
  size_t support_size() const { return values_.size(); }

 private:
  EmpiricalPmf(std::vector<double> values, std::vector<double> probs)
      : values_(std::move(values)), probs_(std::move(probs)) {}

  std::vector<double> values_;  // ascending
  std::vector<double> probs_;
};

}  // namespace density
}  // namespace moche

#endif  // MOCHE_DENSITY_EMPIRICAL_PMF_H_
