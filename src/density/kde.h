// Kernel density estimation — the distribution estimator behind the
// Extended-D3 baseline (Subramaniam et al., VLDB 2006, estimate densities of
// streaming data with kernels).

#ifndef MOCHE_DENSITY_KDE_H_
#define MOCHE_DENSITY_KDE_H_

#include <vector>

#include "util/status.h"

namespace moche {
namespace density {

enum class Kernel {
  kGaussian,
  kEpanechnikov,  // D3's choice
};

enum class BandwidthRule {
  kSilverman,  // 1.06 * sigma * n^(-1/5)
  kScott,      // sigma * n^(-1/5)
  kFixed,      // user-provided
};

struct KdeOptions {
  Kernel kernel = Kernel::kEpanechnikov;
  BandwidthRule bandwidth_rule = BandwidthRule::kSilverman;
  double fixed_bandwidth = 1.0;  ///< used when bandwidth_rule == kFixed
};

/// A kernel density estimate over a 1-D sample.
class Kde {
 public:
  /// Fails on an empty sample or a non-positive fixed bandwidth.
  static Result<Kde> Fit(const std::vector<double>& sample,
                         const KdeOptions& options = {});

  /// Density estimate at x.
  double Evaluate(double x) const;

  /// Density estimates at many points.
  std::vector<double> EvaluateAll(const std::vector<double>& xs) const;

  double bandwidth() const { return bandwidth_; }
  const KdeOptions& options() const { return options_; }

 private:
  Kde(std::vector<double> sorted, double bandwidth, KdeOptions options)
      : sorted_(std::move(sorted)),
        bandwidth_(bandwidth),
        options_(options) {}

  std::vector<double> sorted_;
  double bandwidth_ = 1.0;
  KdeOptions options_;
};

}  // namespace density
}  // namespace moche

#endif  // MOCHE_DENSITY_KDE_H_
