// Kernel density estimation — the distribution estimator behind the
// Extended-D3 baseline (Subramaniam et al., VLDB 2006, estimate densities of
// streaming data with kernels).
//
// Ownership & thread-safety: a Kde owns a sorted copy of its sample and is
// immutable after Fit — concurrent Evaluate calls on one shared instance
// are safe.

#ifndef MOCHE_DENSITY_KDE_H_
#define MOCHE_DENSITY_KDE_H_

#include <vector>

#include "util/status.h"

namespace moche {
namespace density {

enum class Kernel {
  kGaussian,
  kEpanechnikov,  // D3's choice
};

enum class BandwidthRule {
  /// Silverman's rule of thumb: 0.9 * min(sigma, IQR/1.34) * n^(-1/5).
  /// The robust scale keeps the bandwidth sane on heavy-tailed or bimodal
  /// samples where sigma alone oversmooths.
  kSilverman,
  /// Gaussian-reference (Scott) rule: 1.06 * sigma * n^(-1/5). Optimal for
  /// a Gaussian density, oversmooths elsewhere.
  kScott,
  /// User-provided fixed_bandwidth.
  kFixed,
};

struct KdeOptions {
  Kernel kernel = Kernel::kEpanechnikov;
  BandwidthRule bandwidth_rule = BandwidthRule::kSilverman;
  double fixed_bandwidth = 1.0;  ///< used when bandwidth_rule == kFixed
};

/// A kernel density estimate over a 1-D sample.
class Kde {
 public:
  /// Fails on an empty or non-finite sample or a non-positive fixed
  /// bandwidth.
  static Result<Kde> Fit(const std::vector<double>& sample,
                         const KdeOptions& options = {});

  /// Density estimate at x.
  double Evaluate(double x) const;

  /// Density estimates at many points.
  std::vector<double> EvaluateAll(const std::vector<double>& xs) const;

  double bandwidth() const { return bandwidth_; }
  const KdeOptions& options() const { return options_; }

 private:
  Kde(std::vector<double> sorted, double bandwidth, KdeOptions options)
      : sorted_(std::move(sorted)),
        bandwidth_(bandwidth),
        options_(options) {}

  std::vector<double> sorted_;
  double bandwidth_ = 1.0;
  KdeOptions options_;
};

}  // namespace density
}  // namespace moche

#endif  // MOCHE_DENSITY_KDE_H_
