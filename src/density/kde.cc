#include "density/kde.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace moche {
namespace density {

namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;

double GaussianKernel(double u) {
  return kInvSqrt2Pi * std::exp(-0.5 * u * u);
}

double EpanechnikovKernel(double u) {
  return std::fabs(u) <= 1.0 ? 0.75 * (1.0 - u * u) : 0.0;
}

}  // namespace

Result<Kde> Kde::Fit(const std::vector<double>& sample,
                     const KdeOptions& options) {
  if (sample.empty()) {
    return Status::InvalidArgument("KDE needs a non-empty sample");
  }
  double bandwidth = options.fixed_bandwidth;
  if (options.bandwidth_rule != BandwidthRule::kFixed) {
    const double sigma = StdDev(sample);
    const double n = static_cast<double>(sample.size());
    const double factor =
        options.bandwidth_rule == BandwidthRule::kSilverman ? 1.06 : 1.0;
    bandwidth = factor * sigma * std::pow(n, -0.2);
    if (bandwidth <= 1e-12) bandwidth = 1.0;  // constant sample fallback
  }
  if (bandwidth <= 0.0) {
    return Status::InvalidArgument("bandwidth must be positive");
  }
  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  return Kde(std::move(sorted), bandwidth, options);
}

double Kde::Evaluate(double x) const {
  const double h = bandwidth_;
  const double n = static_cast<double>(sorted_.size());
  double sum = 0.0;
  if (options_.kernel == Kernel::kEpanechnikov) {
    // compact support: only sample points within [x-h, x+h] contribute
    const auto lo = std::lower_bound(sorted_.begin(), sorted_.end(), x - h);
    const auto hi = std::upper_bound(sorted_.begin(), sorted_.end(), x + h);
    for (auto it = lo; it != hi; ++it) {
      sum += EpanechnikovKernel((x - *it) / h);
    }
  } else {
    for (double s : sorted_) {
      sum += GaussianKernel((x - s) / h);
    }
  }
  return sum / (n * h);
}

std::vector<double> Kde::EvaluateAll(const std::vector<double>& xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(Evaluate(x));
  return out;
}

}  // namespace density
}  // namespace moche
