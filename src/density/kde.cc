#include "density/kde.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace moche {
namespace density {

namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;

double GaussianKernel(double u) {
  return kInvSqrt2Pi * std::exp(-0.5 * u * u);
}

double EpanechnikovKernel(double u) {
  return std::fabs(u) <= 1.0 ? 0.75 * (1.0 - u * u) : 0.0;
}

// Quantile (util/stats formula) of an already-sorted, finite sample —
// avoids the copy + sort + NaN scan util's Quantile pays per call.
double SortedQuantile(const std::vector<double>& sorted, double p) {
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  if (frac == 0.0 || sorted[lo] == sorted[hi]) return sorted[lo];
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

Result<Kde> Kde::Fit(const std::vector<double>& sample,
                     const KdeOptions& options) {
  if (sample.empty()) {
    return Status::InvalidArgument("KDE needs a non-empty sample");
  }
  for (double v : sample) {
    if (!std::isfinite(v)) {
      // A NaN would hit std::sort (UB) and poison the bandwidth rules.
      return Status::InvalidArgument("KDE sample must be finite");
    }
  }
  std::vector<double> sorted = sample;
  // moche-lint: allow(sort-doubles): range validated finite in the loop above
  std::sort(sorted.begin(), sorted.end());
  double bandwidth = options.fixed_bandwidth;
  if (options.bandwidth_rule != BandwidthRule::kFixed) {
    const double sigma = StdDev(sample);
    const double n = static_cast<double>(sample.size());
    if (options.bandwidth_rule == BandwidthRule::kSilverman) {
      // Silverman's rule of thumb: 0.9 * min(sigma, IQR/1.34) * n^(-1/5).
      // The IQR term keeps heavy tails and multimodality from inflating
      // the bandwidth; a degenerate IQR (many ties) falls back to sigma.
      const double iqr =
          SortedQuantile(sorted, 0.75) - SortedQuantile(sorted, 0.25);
      const double robust_scale = iqr / 1.34;
      const double scale =
          robust_scale > 0.0 ? std::min(sigma, robust_scale) : sigma;
      bandwidth = 0.9 * scale * std::pow(n, -0.2);
    } else {
      // Gaussian-reference (Scott) rule: 1.06 * sigma * n^(-1/5).
      bandwidth = 1.06 * sigma * std::pow(n, -0.2);
    }
    if (bandwidth <= 1e-12) bandwidth = 1.0;  // constant sample fallback
  }
  if (bandwidth <= 0.0) {
    return Status::InvalidArgument("bandwidth must be positive");
  }
  return Kde(std::move(sorted), bandwidth, options);
}

double Kde::Evaluate(double x) const {
  const double h = bandwidth_;
  const double n = static_cast<double>(sorted_.size());
  double sum = 0.0;
  if (options_.kernel == Kernel::kEpanechnikov) {
    // compact support: only sample points within [x-h, x+h] contribute
    const auto lo = std::lower_bound(sorted_.begin(), sorted_.end(), x - h);
    const auto hi = std::upper_bound(sorted_.begin(), sorted_.end(), x + h);
    for (auto it = lo; it != hi; ++it) {
      sum += EpanechnikovKernel((x - *it) / h);
    }
  } else {
    for (double s : sorted_) {
      sum += GaussianKernel((x - s) / h);
    }
  }
  return sum / (n * h);
}

std::vector<double> Kde::EvaluateAll(const std::vector<double>& xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(Evaluate(x));
  return out;
}

}  // namespace density
}  // namespace moche
