#include "density/empirical_pmf.h"

#include <algorithm>
#include <cmath>

namespace moche {
namespace density {

Result<EmpiricalPmf> EmpiricalPmf::Fit(const std::vector<double>& sample) {
  if (sample.empty()) {
    return Status::InvalidArgument("PMF needs a non-empty sample");
  }
  for (double v : sample) {
    // NaN would hit std::sort (UB) and can never satisfy the Evaluate
    // equality probe anyway; Inf is rejected alongside it for symmetry
    // with KDE's finite-sample contract.
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("PMF sample must be finite");
    }
  }
  std::vector<double> sorted = sample;
  // moche-lint: allow(sort-doubles): range validated finite above
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> values;
  std::vector<double> probs;
  const double n = static_cast<double>(sorted.size());
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    values.push_back(sorted[i]);
    probs.push_back(static_cast<double>(j - i) / n);
    i = j;
  }
  return EmpiricalPmf(std::move(values), std::move(probs));
}

double EmpiricalPmf::Evaluate(double x) const {
  const auto it = std::lower_bound(values_.begin(), values_.end(), x);
  if (it == values_.end() || *it != x) return 0.0;
  return probs_[static_cast<size_t>(it - values_.begin())];
}

}  // namespace density
}  // namespace moche
