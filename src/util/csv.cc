#include "util/csv.h"

#include <fstream>
#include <iterator>

#include "util/string_util.h"

namespace moche {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string WriteCsvString(const CsvTable& table) {
  std::string out;
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += QuoteField(row[i]);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvTable& table) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::InvalidArgument("cannot open for write: " + path);
  const std::string text = WriteCsvString(table);
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!f) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<CsvTable> ParseCsvString(const std::string& text) {
  CsvTable table;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_data = false;

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&]() {
    end_field();
    table.rows.push_back(std::move(row));
    row.clear();
    row_has_data = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_data = true;
        break;
      case ',':
        end_field();
        row_has_data = true;
        break;
      case '\r':
        break;  // swallow; the \n ends the row
      case '\n':
        end_row();
        break;
      default:
        field += c;
        row_has_data = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (row_has_data || !field.empty() || !row.empty()) {
    end_row();  // final row without trailing newline
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::NotFound("cannot open for read: " + path);
  std::string text(std::istreambuf_iterator<char>(f),
                   std::istreambuf_iterator<char>{});
  return ParseCsvString(text);
}

Result<std::vector<double>> NumericColumn(const CsvTable& table, size_t column,
                                          size_t skip_rows) {
  std::vector<double> out;
  for (size_t r = skip_rows; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    if (row.size() == 1 && row[0].empty()) continue;  // blank line
    if (column >= row.size()) {
      return Status::OutOfRange(
          StrFormat("row %zu has %zu columns, wanted column %zu", r,
                    row.size(), column));
    }
    double v = 0.0;
    if (!ParseDouble(row[column], &v)) {
      return Status::InvalidArgument(
          StrFormat("row %zu column %zu is not numeric: '%s'", r, column,
                    row[column].c_str()));
    }
    out.push_back(v);
  }
  return out;
}

}  // namespace moche
