// Wall-clock timing for the runtime experiments (Figure 5).
//
// Ownership & thread-safety: a WallTimer owns a single time_point; it is a
// thread-local measurement tool (Restart mutates), cheap to create per
// scope, and never shared.

#ifndef MOCHE_UTIL_TIMER_H_
#define MOCHE_UTIL_TIMER_H_

#include <chrono>

namespace moche {

/// Measures elapsed wall time from construction (or the last Restart()).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / Restart.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace moche

#endif  // MOCHE_UTIL_TIMER_H_
