// Assertion macros for invariants that indicate programmer error.
//
// MOCHE_CHECK aborts (in every build type) with a location-tagged message.
// MOCHE_DCHECK compiles away in NDEBUG builds. Recoverable conditions must
// use Status instead; these macros are for "this cannot happen" invariants.
//
// Ownership & thread-safety: macros only, no state they own; the failure
// path writes one stderr line and aborts, which is safe to hit from any
// thread.

#ifndef MOCHE_UTIL_LOGGING_H_
#define MOCHE_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace moche {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "MOCHE_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace moche

#define MOCHE_CHECK(cond)                                          \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::moche::internal::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                              \
  } while (0)

#ifdef NDEBUG
#define MOCHE_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define MOCHE_DCHECK(cond) MOCHE_CHECK(cond)
#endif

#endif  // MOCHE_UTIL_LOGGING_H_
