// Minimal CSV reading/writing for exporting experiment results and loading
// user-supplied series. Handles quoting of fields containing separators.
//
// Ownership & thread-safety: CsvTable is a caller-owned value; the
// read/write/parse functions are pure apart from the file they touch —
// concurrent calls on distinct tables/paths are safe. Numeric fields go
// through ParseDouble/FormatFixed, never the locale-dependent iostream
// formatters.

#ifndef MOCHE_UTIL_CSV_H_
#define MOCHE_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace moche {

/// One parsed CSV table: rows of string cells.
struct CsvTable {
  std::vector<std::vector<std::string>> rows;
};

/// Serializes rows to CSV text (RFC-4180-ish quoting).
std::string WriteCsvString(const CsvTable& table);

/// Writes `table` to `path`, replacing any existing file.
Status WriteCsvFile(const std::string& path, const CsvTable& table);

/// Parses CSV text. Supports quoted fields with embedded commas/quotes and
/// both \n and \r\n row terminators.
Result<CsvTable> ParseCsvString(const std::string& text);

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path);

/// Parses a single numeric column (by index) from a table, skipping
/// `skip_rows` header rows. Fails on non-numeric cells.
Result<std::vector<double>> NumericColumn(const CsvTable& table, size_t column,
                                          size_t skip_rows = 0);

}  // namespace moche

#endif  // MOCHE_UTIL_CSV_H_
