// AVX2 kernel table. This translation unit (and only this one) is compiled
// with -mavx2 (see src/util/CMakeLists.txt); the guard below keeps it an
// empty stub on non-x86 targets. Runtime safety: the table is handed out
// only after __builtin_cpu_supports("avx2") says the CPU has the
// instructions, so linking this TU into a generic binary is safe.
//
// Bit-identity notes (the contract is spelled out in simd.h): every lane
// operation here — vsubpd/vmulpd/vaddpd/vdivpd/vminpd/vmaxpd/vcmppd — is
// the correctly rounded IEEE-754 operation, identical to its scalar
// counterpart; no FMA is emitted (the fused result would differ) because
// the multiply and subtract are separate intrinsics and the build disables
// contraction. Prefix maxima are computed with in-register max trees, which
// agree with the scalar running max because the inputs are finite and never
// -0.0 (Gamma = C_T - scale*C_R with C_T >= 0 and scale*C_R >= 0 cannot
// round to -0.0, and vmaxpd on bit-equal operands returns those bits).
// First-index tie-breaks re-derive the index from an equality mask instead
// of trusting any reduction order.

#include "util/simd.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace moche {
namespace simd {
namespace {

inline double Lane0(__m256d v) {
  return _mm_cvtsd_f64(_mm256_castpd256_pd128(v));
}

// Prefix max across the four lanes (lane 0 = lowest index), seeded with
// `carry` (the running max before this block, broadcast in all lanes):
// out[k] = max(carry, in[0..k]).
inline __m256d PrefixMax(__m256d g, __m256d carry) {
  const __m256d kNegInf =
      _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  // Slide one lane up, filling with -inf, and take the max; then two lanes.
  __m256d s1 = _mm256_blend_pd(
      _mm256_permute4x64_pd(g, _MM_SHUFFLE(2, 1, 0, 0)), kNegInf, 0x1);
  g = _mm256_max_pd(g, s1);
  __m256d s2 = _mm256_blend_pd(
      _mm256_permute4x64_pd(g, _MM_SHUFFLE(1, 0, 0, 0)), kNegInf, 0x3);
  g = _mm256_max_pd(g, s2);
  return _mm256_max_pd(g, carry);
}

// Max of all four lanes, broadcast to every lane.
inline __m256d HorizontalMax(__m256d d) {
  __m256d t = _mm256_max_pd(d, _mm256_permute2f128_pd(d, d, 0x1));
  return _mm256_max_pd(t, _mm256_permute_pd(t, 0x5));
}

size_t Theorem1FilterScanAvx2(const double* ct_d, const double* cr_d,
                              const double* rigid_d, size_t begin, size_t end,
                              double scale, double omega, double hh_d,
                              double* running_max) {
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d vomega = _mm256_set1_pd(omega);
  const __m256d vhh = _mm256_set1_pd(hh_d);
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vzero = _mm256_setzero_pd();
  __m256d carry = _mm256_set1_pd(*running_max);
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256d ct = _mm256_loadu_pd(ct_d + i);
    const __m256d cr = _mm256_loadu_pd(cr_d + i);
    const __m256d rg = _mm256_loadu_pd(rigid_d + i);
    const __m256d gamma = _mm256_sub_pd(ct, _mm256_mul_pd(vscale, cr));
    const __m256d pm = PrefixMax(gamma, carry);
    const __m256d a = _mm256_sub_pd(pm, vomega);
    const __m256d b = _mm256_add_pd(gamma, vomega);
    const __m256d rigid_hi = _mm256_min_pd(ct, vhh);
    const __m256d rigid_lo =
        _mm256_max_pd(_mm256_add_pd(vhh, rg), vzero);
    const __m256d pass = _mm256_and_pd(
        _mm256_and_pd(_mm256_cmp_pd(a, rigid_hi, _CMP_LE_OQ),
                      _mm256_cmp_pd(b, rigid_lo, _CMP_GE_OQ)),
        _mm256_cmp_pd(_mm256_sub_pd(b, a), vone, _CMP_GE_OQ));
    const int mask = _mm256_movemask_pd(pass);
    if (mask != 0xF) {
      const int k = __builtin_ctz(~mask & 0xF);
      alignas(32) double pmv[4];
      _mm256_store_pd(pmv, pm);
      *running_max = pmv[k];
      return i + static_cast<size_t>(k);
    }
    carry = _mm256_permute4x64_pd(pm, _MM_SHUFFLE(3, 3, 3, 3));
  }
  *running_max = Lane0(carry);
  return KernelsFor(Isa::kScalar)
      .theorem1_filter_scan(ct_d, cr_d, rigid_d, i, end, scale, omega, hh_d,
                            running_max);
}

size_t Theorem2FilterScanAvx2(const double* ct_d, const double* cr_d,
                              size_t begin, size_t end, double scale,
                              double omega, double hh_d,
                              double* running_max) {
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d vomega = _mm256_set1_pd(omega);
  const __m256d vhh = _mm256_set1_pd(hh_d);
  const __m256d vzero = _mm256_setzero_pd();
  __m256d carry = _mm256_set1_pd(*running_max);
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256d ct = _mm256_loadu_pd(ct_d + i);
    const __m256d cr = _mm256_loadu_pd(cr_d + i);
    const __m256d gamma = _mm256_sub_pd(ct, _mm256_mul_pd(vscale, cr));
    const __m256d pm = PrefixMax(gamma, carry);
    const __m256d a = _mm256_sub_pd(pm, vomega);
    const __m256d b = _mm256_add_pd(gamma, vomega);
    const __m256d pass =
        _mm256_and_pd(_mm256_and_pd(_mm256_cmp_pd(b, vzero, _CMP_GE_OQ),
                                    _mm256_cmp_pd(a, vhh, _CMP_LE_OQ)),
                      _mm256_cmp_pd(a, b, _CMP_LE_OQ));
    const int mask = _mm256_movemask_pd(pass);
    if (mask != 0xF) {
      const int k = __builtin_ctz(~mask & 0xF);
      alignas(32) double pmv[4];
      _mm256_store_pd(pmv, pm);
      *running_max = pmv[k];
      return i + static_cast<size_t>(k);
    }
    carry = _mm256_permute4x64_pd(pm, _MM_SHUFFLE(3, 3, 3, 3));
  }
  *running_max = Lane0(carry);
  return KernelsFor(Isa::kScalar)
      .theorem2_filter_scan(ct_d, cr_d, i, end, scale, omega, hh_d,
                            running_max);
}

// Shared tail of the two ECDF sweeps: fold one block's |F_R - F_T| vector
// into the (best, best_index) state with the scalar loop's first-strict-max
// semantics — a new global max picks the block's first lane attaining it.
inline void FoldSweepBlock(__m256d d, size_t base, double* best,
                           size_t* best_index) {
  const double hmax = Lane0(HorizontalMax(d));
  if (hmax > *best) {
    *best = hmax;
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(d, _mm256_set1_pd(hmax), _CMP_EQ_OQ));
    *best_index = base + static_cast<size_t>(__builtin_ctz(mask));
  }
}

// A function, not a global: a namespace-scope __m256d would execute AVX
// instructions in its load-time initializer, before the CPU check runs.
inline __m256d AbsMask() {
  return _mm256_castsi256_pd(
      _mm256_set1_epi64x(static_cast<int64_t>(0x7FFFFFFFFFFFFFFFull)));
}

double EcdfSweepCumAvx2(const double* cum_r, const double* cum_t, size_t q,
                        double n, double m, size_t* best_index) {
  const __m256d vn = _mm256_set1_pd(n);
  const __m256d vm = _mm256_set1_pd(m);
  double best = 0.0;
  size_t bi = SIZE_MAX;
  size_t i = 0;
  for (; i + 4 <= q; i += 4) {
    const __m256d dr = _mm256_div_pd(_mm256_loadu_pd(cum_r + i), vn);
    const __m256d dt = _mm256_div_pd(_mm256_loadu_pd(cum_t + i), vm);
    const __m256d d = _mm256_and_pd(_mm256_sub_pd(dr, dt), AbsMask());
    FoldSweepBlock(d, i, &best, &bi);
  }
  for (; i < q; ++i) {
    const double d = std::fabs(cum_r[i] / n - cum_t[i] / m);
    if (d > best) {
      best = d;
      bi = i;
    }
  }
  if (bi != SIZE_MAX) *best_index = bi;
  return best;
}

// Exact int64 -> double conversion for 0 <= x < 2^52: OR in the exponent of
// 2^52 and subtract it back out in double arithmetic.
inline __m256d ExactSmallInt64ToDouble(__m256i x) {
  const __m256i kMagicBits =
      _mm256_set1_epi64x(static_cast<int64_t>(0x4330000000000000ull));
  return _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(x, kMagicBits)),
                       _mm256_set1_pd(0x1p52));
}

double EcdfSweepCountsAvx2(const double* cum_r_d, const int64_t* count_t,
                           const int64_t* removed, size_t q, double n,
                           double m_rem, size_t* best_index) {
  const __m256d vn = _mm256_set1_pd(n);
  const __m256d vm = _mm256_set1_pd(m_rem);
  const __m256i vzero = _mm256_setzero_si256();
  __m256i carry = _mm256_setzero_si256();
  double best = 0.0;
  size_t bi = SIZE_MAX;
  size_t i = 0;
  for (; i + 4 <= q; i += 4) {
    __m256i x = _mm256_sub_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(count_t + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(removed + i)));
    // In-register prefix sum (lane 0 = lowest index), then add the carry.
    __m256i s1 = _mm256_blend_epi32(
        _mm256_permute4x64_epi64(x, _MM_SHUFFLE(2, 1, 0, 0)), vzero, 0x03);
    x = _mm256_add_epi64(x, s1);
    __m256i s2 = _mm256_blend_epi32(
        _mm256_permute4x64_epi64(x, _MM_SHUFFLE(1, 0, 0, 0)), vzero, 0x0F);
    x = _mm256_add_epi64(x, s2);
    x = _mm256_add_epi64(x, carry);
    carry = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(3, 3, 3, 3));
    const __m256d dr = _mm256_div_pd(_mm256_loadu_pd(cum_r_d + i), vn);
    const __m256d dt = _mm256_div_pd(ExactSmallInt64ToDouble(x), vm);
    const __m256d d = _mm256_and_pd(_mm256_sub_pd(dr, dt), AbsMask());
    FoldSweepBlock(d, i, &best, &bi);
  }
  int64_t cum_t = _mm256_extract_epi64(carry, 0);
  for (; i < q; ++i) {
    cum_t += count_t[i] - removed[i];
    const double d =
        std::fabs(cum_r_d[i] / n - static_cast<double>(cum_t) / m_rem);
    if (d > best) {
      best = d;
      bi = i;
    }
  }
  if (bi != SIZE_MAX) *best_index = bi;
  return best;
}

bool AllFiniteAvx2(const double* values, size_t count) {
  // finite(v) <=> v - v == 0 (Inf - Inf and NaN - NaN are both NaN).
  const __m256d vzero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    const __m256d diff = _mm256_sub_pd(v, v);
    if (_mm256_movemask_pd(_mm256_cmp_pd(diff, vzero, _CMP_EQ_OQ)) != 0xF) {
      return false;
    }
  }
  for (; i < count; ++i) {
    if (!std::isfinite(values[i])) return false;
  }
  return true;
}

const Kernels kAvx2Kernels = {
    Theorem1FilterScanAvx2, Theorem2FilterScanAvx2, EcdfSweepCumAvx2,
    EcdfSweepCountsAvx2,    AllFiniteAvx2,
};

}  // namespace

namespace internal {

const Kernels* Avx2KernelsOrNull() {
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported ? &kAvx2Kernels : nullptr;
}

}  // namespace internal
}  // namespace simd
}  // namespace moche

#else  // !x86

namespace moche {
namespace simd {
namespace internal {

const Kernels* Avx2KernelsOrNull() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace moche

#endif
