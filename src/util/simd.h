// Runtime-dispatched SIMD kernels for the bounds/KS hot loops.
//
// The library's inner loops — the Theorem 1/2 fast-filter scans, the merged
// ECDF sweeps, and batch validation — stream flat double/int64 arrays. This
// shim exposes those loops as a table of function pointers (`Kernels`) with
// three implementations: a portable scalar reference, an AVX2 path
// (x86-64), and a NEON path (aarch64). The table is selected exactly once,
// at first use, from the CPU's capabilities; `MOCHE_SIMD=scalar` (or
// `avx2`/`neon`, when available) overrides the choice for A/B runs and the
// forced-scalar CI leg. Unknown values fall back to scalar.
//
// Bit-identity contract: every vector kernel is REQUIRED to produce results
// bit-identical to the scalar reference on all finite inputs — same
// doubles, same indices, same booleans. The kernels achieve this by using
// only lane-wise IEEE-754 operations in the same order the scalar loop
// applies them (add/sub/mul/div/max/compare are correctly rounded per lane,
// so four lanes of vaddpd equal four scalar adds), by never using FMA (the
// build sets -ffp-contract=off so scalar code cannot silently fuse either),
// and by handling order-sensitive reductions (prefix max, first-strict-max
// argmax) with exact lane arithmetic rather than reassociation: a max tree
// over distinct finite doubles is order-insensitive, and first-index
// tie-breaks are recomputed from the lane mask. The scalar-vs-SIMD parity
// suite (tests/util/simd_test.cc) fuzzes every kernel on tie-heavy,
// denormal, and ±0.0 inputs, and the 399-instance corpus-dump gate checks
// the end-to-end pipeline (docs/BENCHMARKS.md).
//
// Adding a kernel: add the function pointer here, the scalar reference in
// simd.cc (it IS the spec — byte-for-byte the loop it replaced), the
// vector paths in simd_avx2.cc / simd_neon.cc (fall back to the scalar
// pointer if a port is not worth it), wire all tables, and extend the
// parity suite. Nothing else needs to change: callers reach kernels only
// through ActiveKernels().
//
// Thread-safety: dispatch is a magic static; the tables are immutable.
// Kernels are pure functions of their arguments.
//
// Ownership & thread-safety: the kernel tables are immutable statics owned
// by the process; ActiveKernels resolves the dispatch once and every kernel
// is a pure function over caller-provided buffers, so all of this is safe
// from any thread.

#ifndef MOCHE_UTIL_SIMD_H_
#define MOCHE_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace moche {
namespace simd {

enum class Isa {
  kScalar = 0,
  kAvx2,
  kNeon,
};

/// "scalar", "avx2", "neon" — stable strings, recorded in BENCH_*.json.
const char* IsaName(Isa isa);

/// The instruction set selected at startup (CPU capability, then the
/// MOCHE_SIMD override). Never changes during the process lifetime.
Isa ActiveIsa();
const char* ActiveIsaName();

/// The vectorized inner loops. All pointers are non-null in every table.
struct Kernels {
  /// The Theorem 1 fast-filter scan over coordinates [begin, end) of the
  /// engine's structure-of-arrays coefficient view (ct_d = C_T[i],
  /// cr_d = C_R[i], rigid_d = C_T[i] - m, all as doubles):
  ///   gamma_i = ct_d[i] - scale * cr_d[i]
  ///   M_i     = max(M_{i-1}, gamma_i)          (prefix max, seeded by
  ///                                             *running_max on entry)
  ///   pass_i  = M_i - omega <= min(ct_d[i], hh_d)
  ///          && gamma_i + omega >= max(hh_d + rigid_d[i], 0.0)
  ///          && (gamma_i + omega) - (M_i - omega) >= 1.0
  /// Returns the first i with !pass_i, or `end` when every coordinate
  /// passes. On return *running_max is the prefix max of gamma over
  /// [begin, i] (inclusive of the failing coordinate), so the caller can
  /// run the exact integer-rounding path at i and resume at i + 1.
  size_t (*theorem1_filter_scan)(const double* ct_d, const double* cr_d,
                                 const double* rigid_d, size_t begin,
                                 size_t end, double scale, double omega,
                                 double hh_d, double* running_max);

  /// The Theorem 2 (Equation 5) fast-filter scan, same conventions:
  ///   pass_i = gamma_i + omega >= 0.0
  ///         && M_i - omega <= hh_d
  ///         && M_i - omega <= gamma_i + omega
  size_t (*theorem2_filter_scan)(const double* ct_d, const double* cr_d,
                                 size_t begin, size_t end, double scale,
                                 double omega, double hh_d,
                                 double* running_max);

  /// The ECDF sweep over q precomputed cumulative counts (as doubles):
  ///   d_i = |cum_r[i] / n - cum_t[i] / m|
  /// Returns max_i d_i with the scalar loop's first-strict-max tie-break:
  /// *best_index is the smallest i attaining the max, or left untouched
  /// when the max is 0.0 (no d_i ever exceeds the initial best of 0.0 —
  /// callers keep their "front value" location sentinel for that case).
  double (*ecdf_sweep_cum)(const double* cum_r, const double* cum_t,
                           size_t q, double n, double m, size_t* best_index);

  /// The RemovalKs sweep: cum_r is prefix-summed up front (doubles), the
  /// test side is prefix-summed in the kernel from per-value counts:
  ///   cum_t_i = sum_{j<=i} (count_t[j] - removed[j])
  ///   d_i     = |cum_r_d[i] / n - double(cum_t_i) / m_rem|
  /// Same return/tie-break contract as ecdf_sweep_cum. Counts must stay
  /// below 2^52 (any real sample is; the int64 -> double conversion is
  /// exact there).
  double (*ecdf_sweep_counts)(const double* cum_r_d, const int64_t* count_t,
                              const int64_t* removed, size_t q, double n,
                              double m_rem, size_t* best_index);

  /// True iff every value is finite (no NaN/Inf). Empty ranges are finite.
  bool (*all_finite)(const double* values, size_t count);
};

/// The table matching ActiveIsa().
const Kernels& ActiveKernels();

/// The table for a specific ISA — the scalar table when `isa` is not
/// available on this machine/build. The parity tests use this to compare
/// implementations directly without re-execing under MOCHE_SIMD.
const Kernels& KernelsFor(Isa isa);

/// True when `isa` has a real (non-fallback) table in this build on this
/// CPU. kScalar is always available.
bool IsaAvailable(Isa isa);

namespace internal {
// Per-ISA tables, defined in their own translation units so only
// simd_avx2.cc is compiled with -mavx2. Null when the build targets a
// different architecture.
const Kernels* Avx2KernelsOrNull();
const Kernels* NeonKernelsOrNull();
}  // namespace internal

}  // namespace simd
}  // namespace moche

#endif  // MOCHE_UTIL_SIMD_H_
