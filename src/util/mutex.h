// Annotated mutex primitives for clang's thread-safety analysis.
//
// libstdc++'s std::mutex carries no capability attributes, so clang's
// `-Wthread-safety` analysis cannot see a std::lock_guard acquire it —
// every MOCHE_GUARDED_BY member would warn on correct code. These thin
// wrappers (same codegen: each method is one inlined call into the wrapped
// std primitive) restore visibility:
//
//   * Mutex      — a std::mutex declared MOCHE_CAPABILITY("mutex").
//   * MutexLock  — a scoped lock (std::lock_guard shape) the analysis
//                  tracks: construction acquires, destruction releases.
//   * CondVar    — a std::condition_variable whose Wait REQUIRES the
//                  mutex, for use inside an explicit predicate loop:
//                      MutexLock lock(&mu_);
//                      while (!ready_) cv_.Wait(mu_);
//                  (An explicit loop instead of the predicate-lambda
//                  overload: the analysis treats a lambda body as a
//                  separate function that does not hold the mutex, so
//                  guarded reads inside a wait predicate would warn.)
//
// Ownership & thread-safety: Mutex and CondVar are non-movable
// synchronization primitives — a class holding one is pinned in memory
// (hold them through unique_ptr when the owner must stay movable, as
// DriftMonitor does with its PreparedReferenceCache). MutexLock is a
// stack-only RAII guard. All three are safe to use from any thread; that
// is their job.

#ifndef MOCHE_UTIL_MUTEX_H_
#define MOCHE_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace moche {

class MOCHE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MOCHE_ACQUIRE() { mu_.lock(); }
  void Unlock() MOCHE_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for a Mutex; the analysis knows the capability is held for
/// exactly the guard's scope.
class MOCHE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) MOCHE_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() MOCHE_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to an annotated Mutex at each wait. Keeps the
/// std::condition_variable fast path (no condition_variable_any overhead):
/// Wait adopts the Mutex's underlying std::mutex for the duration of the
/// wait and releases ownership of the handle — not the lock — on return.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps until notified (or spuriously woken),
  /// and reacquires `mu` before returning. Callers re-check their predicate
  /// in a loop around this, while holding `mu`.
  void Wait(Mutex& mu) MOCHE_REQUIRES(mu) {
    std::unique_lock<std::mutex> handle(mu.mu_, std::adopt_lock);
    cv_.wait(handle);
    handle.release();  // the MutexLock in the caller still owns the lock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace moche

#endif  // MOCHE_UTIL_MUTEX_H_
