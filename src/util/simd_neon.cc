// NEON (aarch64) kernel table. NEON is the aarch64 baseline, so this TU
// needs no special compile flags; the guard keeps it an empty stub
// elsewhere. The bit-identity contract and the lane-arithmetic arguments
// are the same as simd_avx2.cc, just two lanes wide: vsub/vmul/vadd/vdiv/
// vmin/vmax/vabs over float64x2_t are the correctly rounded IEEE-754
// operations (vabsq_f64 clears the sign bit, exactly std::fabs), no FMA
// intrinsic is used, and vcvtq_f64_s64 (scvtf) is exact for |x| < 2^53.

#include "util/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace moche {
namespace simd {
namespace {

// Prefix max across the two lanes (lane 0 = lowest index), seeded with
// `carry` broadcast in both lanes: out = [max(c, g0), max(c, g0, g1)].
inline float64x2_t PrefixMax2(float64x2_t g, float64x2_t carry) {
  const float64x2_t neg_inf =
      vdupq_n_f64(-std::numeric_limits<double>::infinity());
  // [-inf, g0]: slide one lane up.
  const float64x2_t s1 = vextq_f64(neg_inf, g, 1);
  return vmaxq_f64(vmaxq_f64(g, s1), carry);
}

size_t Theorem1FilterScanNeon(const double* ct_d, const double* cr_d,
                              const double* rigid_d, size_t begin, size_t end,
                              double scale, double omega, double hh_d,
                              double* running_max) {
  const float64x2_t vscale = vdupq_n_f64(scale);
  const float64x2_t vomega = vdupq_n_f64(omega);
  const float64x2_t vhh = vdupq_n_f64(hh_d);
  const float64x2_t vone = vdupq_n_f64(1.0);
  const float64x2_t vzero = vdupq_n_f64(0.0);
  float64x2_t carry = vdupq_n_f64(*running_max);
  size_t i = begin;
  for (; i + 2 <= end; i += 2) {
    const float64x2_t ct = vld1q_f64(ct_d + i);
    const float64x2_t cr = vld1q_f64(cr_d + i);
    const float64x2_t rg = vld1q_f64(rigid_d + i);
    const float64x2_t gamma = vsubq_f64(ct, vmulq_f64(vscale, cr));
    const float64x2_t pm = PrefixMax2(gamma, carry);
    const float64x2_t a = vsubq_f64(pm, vomega);
    const float64x2_t b = vaddq_f64(gamma, vomega);
    const float64x2_t rigid_hi = vminq_f64(ct, vhh);
    const float64x2_t rigid_lo = vmaxq_f64(vaddq_f64(vhh, rg), vzero);
    const uint64x2_t pass =
        vandq_u64(vandq_u64(vcleq_f64(a, rigid_hi), vcgeq_f64(b, rigid_lo)),
                  vcgeq_f64(vsubq_f64(b, a), vone));
    if (vgetq_lane_u64(pass, 0) == 0) {
      *running_max = vgetq_lane_f64(pm, 0);
      return i;
    }
    if (vgetq_lane_u64(pass, 1) == 0) {
      *running_max = vgetq_lane_f64(pm, 1);
      return i + 1;
    }
    carry = vdupq_laneq_f64(pm, 1);
  }
  *running_max = vgetq_lane_f64(carry, 0);
  return KernelsFor(Isa::kScalar)
      .theorem1_filter_scan(ct_d, cr_d, rigid_d, i, end, scale, omega, hh_d,
                            running_max);
}

size_t Theorem2FilterScanNeon(const double* ct_d, const double* cr_d,
                              size_t begin, size_t end, double scale,
                              double omega, double hh_d,
                              double* running_max) {
  const float64x2_t vscale = vdupq_n_f64(scale);
  const float64x2_t vomega = vdupq_n_f64(omega);
  const float64x2_t vhh = vdupq_n_f64(hh_d);
  const float64x2_t vzero = vdupq_n_f64(0.0);
  float64x2_t carry = vdupq_n_f64(*running_max);
  size_t i = begin;
  for (; i + 2 <= end; i += 2) {
    const float64x2_t ct = vld1q_f64(ct_d + i);
    const float64x2_t cr = vld1q_f64(cr_d + i);
    const float64x2_t gamma = vsubq_f64(ct, vmulq_f64(vscale, cr));
    const float64x2_t pm = PrefixMax2(gamma, carry);
    const float64x2_t a = vsubq_f64(pm, vomega);
    const float64x2_t b = vaddq_f64(gamma, vomega);
    const uint64x2_t pass = vandq_u64(
        vandq_u64(vcgeq_f64(b, vzero), vcleq_f64(a, vhh)), vcleq_f64(a, b));
    if (vgetq_lane_u64(pass, 0) == 0) {
      *running_max = vgetq_lane_f64(pm, 0);
      return i;
    }
    if (vgetq_lane_u64(pass, 1) == 0) {
      *running_max = vgetq_lane_f64(pm, 1);
      return i + 1;
    }
    carry = vdupq_laneq_f64(pm, 1);
  }
  *running_max = vgetq_lane_f64(carry, 0);
  return KernelsFor(Isa::kScalar)
      .theorem2_filter_scan(ct_d, cr_d, i, end, scale, omega, hh_d,
                            running_max);
}

// Fold one block's |F_R - F_T| pair into (best, best_index) with the
// scalar loop's first-strict-max semantics.
inline void FoldSweepPair(float64x2_t d, size_t base, double* best,
                          size_t* best_index) {
  const double d0 = vgetq_lane_f64(d, 0);
  const double d1 = vgetq_lane_f64(d, 1);
  if (d0 > *best) {
    *best = d0;
    *best_index = base;
  }
  if (d1 > *best) {
    *best = d1;
    *best_index = base + 1;
  }
}

double EcdfSweepCumNeon(const double* cum_r, const double* cum_t, size_t q,
                        double n, double m, size_t* best_index) {
  const float64x2_t vn = vdupq_n_f64(n);
  const float64x2_t vm = vdupq_n_f64(m);
  double best = 0.0;
  size_t bi = SIZE_MAX;
  size_t i = 0;
  for (; i + 2 <= q; i += 2) {
    const float64x2_t dr = vdivq_f64(vld1q_f64(cum_r + i), vn);
    const float64x2_t dt = vdivq_f64(vld1q_f64(cum_t + i), vm);
    const float64x2_t d = vabsq_f64(vsubq_f64(dr, dt));
    FoldSweepPair(d, i, &best, &bi);
  }
  for (; i < q; ++i) {
    const double d = std::fabs(cum_r[i] / n - cum_t[i] / m);
    if (d > best) {
      best = d;
      bi = i;
    }
  }
  if (bi != SIZE_MAX) *best_index = bi;
  return best;
}

double EcdfSweepCountsNeon(const double* cum_r_d, const int64_t* count_t,
                           const int64_t* removed, size_t q, double n,
                           double m_rem, size_t* best_index) {
  const float64x2_t vn = vdupq_n_f64(n);
  const float64x2_t vm = vdupq_n_f64(m_rem);
  int64x2_t carry = vdupq_n_s64(0);
  double best = 0.0;
  size_t bi = SIZE_MAX;
  size_t i = 0;
  for (; i + 2 <= q; i += 2) {
    int64x2_t x =
        vsubq_s64(vld1q_s64(count_t + i), vld1q_s64(removed + i));
    // In-register prefix sum: [x0, x0 + x1], plus the carry.
    x = vaddq_s64(x, vextq_s64(vdupq_n_s64(0), x, 1));
    x = vaddq_s64(x, carry);
    carry = vdupq_laneq_s64(x, 1);
    // scvtf is exact for counts < 2^53 — identical to static_cast<double>.
    const float64x2_t dr = vdivq_f64(vld1q_f64(cum_r_d + i), vn);
    const float64x2_t dt = vdivq_f64(vcvtq_f64_s64(x), vm);
    const float64x2_t d = vabsq_f64(vsubq_f64(dr, dt));
    FoldSweepPair(d, i, &best, &bi);
  }
  int64_t cum_t = vgetq_lane_s64(carry, 0);
  for (; i < q; ++i) {
    cum_t += count_t[i] - removed[i];
    const double d =
        std::fabs(cum_r_d[i] / n - static_cast<double>(cum_t) / m_rem);
    if (d > best) {
      best = d;
      bi = i;
    }
  }
  if (bi != SIZE_MAX) *best_index = bi;
  return best;
}

bool AllFiniteNeon(const double* values, size_t count) {
  // finite(v) <=> v - v == 0 (Inf - Inf and NaN - NaN are both NaN).
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const float64x2_t v = vld1q_f64(values + i);
    const uint64x2_t ok = vceqzq_f64(vsubq_f64(v, v));
    if (vgetq_lane_u64(ok, 0) == 0 || vgetq_lane_u64(ok, 1) == 0) {
      return false;
    }
  }
  for (; i < count; ++i) {
    if (!std::isfinite(values[i])) return false;
  }
  return true;
}

const Kernels kNeonKernels = {
    Theorem1FilterScanNeon, Theorem2FilterScanNeon, EcdfSweepCumNeon,
    EcdfSweepCountsNeon,    AllFiniteNeon,
};

}  // namespace

namespace internal {

const Kernels* NeonKernelsOrNull() { return &kNeonKernels; }

}  // namespace internal
}  // namespace simd
}  // namespace moche

#else  // !aarch64

namespace moche {
namespace simd {
namespace internal {

const Kernels* NeonKernelsOrNull() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace moche

#endif
