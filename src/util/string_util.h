// Small string helpers used across the library (GCC 12 lacks <format>).
//
// Ownership & thread-safety: pure free functions returning owned strings;
// no shared state, safe from any thread. The double formatters/parsers are
// locale-independent by design (std::to_chars / std::from_chars).

#ifndef MOCHE_UTIL_STRING_UTIL_H_
#define MOCHE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace moche {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Formats `v` with 17 significant digits via std::to_chars: byte-identical
/// to printf("%.17g") in the C locale, but independent of the process
/// locale — a comma-decimal LC_NUMERIC must never leak into JSON or the
/// identity corpus (both are diffed byte-for-byte across machines).
std::string FormatG17(double v);

/// As FormatG17, appending to `*out` without temporaries.
void AppendG17(double v, std::string* out);

/// Formats `v` with `precision` digits after the decimal point via
/// std::to_chars: byte-identical to printf("%.*f") in the C locale, but
/// locale-independent — CSV exports and other machine-readable artifacts
/// must parse the same everywhere (see FormatG17). precision is clamped
/// to [0, 17].
std::string FormatFixed(double v, int precision);

/// Parses a double; returns false on any trailing garbage or empty input.
/// Locale-independent (std::from_chars): "3.14" parses the same way under
/// a comma-decimal locale, and a comma decimal is never accepted.
bool ParseDouble(std::string_view s, double* out);

/// Parses a signed 64-bit integer with the same strictness.
bool ParseInt64(std::string_view s, long long* out);

}  // namespace moche

#endif  // MOCHE_UTIL_STRING_UTIL_H_
