// Small string helpers used across the library (GCC 12 lacks <format>).

#ifndef MOCHE_UTIL_STRING_UTIL_H_
#define MOCHE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace moche {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Parses a double; returns false on any trailing garbage or empty input.
bool ParseDouble(std::string_view s, double* out);

/// Parses a signed 64-bit integer with the same strictness.
bool ParseInt64(std::string_view s, long long* out);

}  // namespace moche

#endif  // MOCHE_UTIL_STRING_UTIL_H_
