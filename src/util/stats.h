// Descriptive statistics shared by the harness and the benches.
//
// Ownership & thread-safety: pure free functions over caller-owned vectors
// (by-value parameters are private copies); no shared state, safe from any
// thread. NaN inputs propagate to NaN results — they never reach a sort.

#ifndef MOCHE_UTIL_STATS_H_
#define MOCHE_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace moche {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& v);

/// Unbiased sample variance (n-1 denominator); 0 when fewer than 2 points.
double Variance(const std::vector<double>& v);

/// Square root of Variance().
double StdDev(const std::vector<double>& v);

/// Linear-interpolated quantile, p in [0, 1]; matches numpy's default.
/// The input does not need to be sorted. Returns 0 for an empty input.
/// NaN-propagating: any NaN in the input yields NaN (a NaN would break the
/// strict weak ordering std::sort requires, so the input is never sorted
/// with one). Mean/Variance/StdDev propagate NaN arithmetically already.
double Quantile(std::vector<double> v, double p);

/// Quantile(v, 0.5). NaN-propagating like Quantile.
double Median(std::vector<double> v);

/// The summary a box plot draws (paper Figure 6).
struct FiveNumberSummary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;  ///< Figure 6 also marks the mean
};

/// Computes the five-number summary (plus mean) of `v`. NaN-propagating
/// like Quantile: any NaN in the input yields a summary of all NaNs.
FiveNumberSummary Summarize(const std::vector<double>& v);

/// z-normalizes `v` in place: (x - mean) / stddev. A (near-)constant input
/// becomes all zeros instead of dividing by ~0.
void ZNormalize(std::vector<double>* v);

}  // namespace moche

#endif  // MOCHE_UTIL_STATS_H_
