// A minimal fixed-size thread pool and a deterministic ParallelFor.
//
// The pool exists so the experiment harness (and any future sharding/async
// layer) can fan independent instances out across cores without external
// dependencies. Design constraints, in order:
//
//  * Deterministic task->index mapping: ParallelFor(count, fn) calls fn(i)
//    exactly once for every i in [0, count). Which worker runs which index
//    is unspecified, but because every task knows its own index, callers
//    write results into slot i and the merged output is identical to the
//    sequential loop regardless of scheduling.
//  * Exception-free: the library communicates failure through Status, never
//    by throwing. Tasks must not throw; an escaping exception would cross a
//    thread boundary and terminate the process.
//  * No oversubscription surprises: a pool of one thread (or a count of one
//    task) runs inline on the caller with no synchronization at all, so the
//    single-threaded configuration is exactly the sequential code path.
//
// Ownership & thread-safety: a ThreadPool owns its workers and joins them
// in the destructor. The pool itself is single-driver — ParallelFor must
// not be called concurrently from multiple threads, and tasks must not
// call ParallelFor on the pool running them (no re-entrancy). Tasks may
// freely share immutable state; anything mutable must be per-index (the
// slot-writing rule above). The repo-wide thread-count convention is
// 1 = sequential, 0 = one thread per hardware core (ResolveThreadCount).

#ifndef MOCHE_UTIL_PARALLEL_H_
#define MOCHE_UTIL_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace moche {

/// The number of hardware threads, with a floor of 1 (the standard allows
/// std::thread::hardware_concurrency() to return 0 when unknown).
size_t HardwareConcurrency();

/// Resolves a user-facing thread-count knob: 0 means "one per hardware
/// core", anything else is taken literally.
size_t ResolveThreadCount(size_t requested);

namespace internal {

/// The state of one ParallelFor call. Heap-allocated and shared between the
/// caller and the workers so that a worker descheduled across the end of a
/// job can only ever touch that job's own (already drained) counters, never
/// a successor job's. fn receives (worker, index); plain ParallelFor wraps
/// its index-only callback.
struct ParallelJob {
  std::function<void(size_t, size_t)> fn;
  size_t count = 0;
  std::atomic<size_t> next_index{0};
  std::atomic<size_t> done_count{0};
};

}  // namespace internal

/// A fixed pool of worker threads executing one ParallelFor at a time.
///
/// Reuse one pool across many ParallelFor calls to amortize thread startup;
/// the workers sleep between calls. The pool itself is NOT thread-safe:
/// ParallelFor must not be called concurrently from multiple threads, and
/// tasks must not call ParallelFor on the pool that is running them.
class ThreadPool {
 public:
  /// Spawns ResolveThreadCount(num_threads) - 1 workers (the calling thread
  /// is the remaining one: it participates in every ParallelFor).
  explicit ThreadPool(size_t num_threads);

  /// Blocks until all workers have exited. Must not race a ParallelFor.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that execute tasks (workers + the calling thread).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs fn(i) exactly once for every i in [0, count), distributing
  /// indices across the pool, and returns once all calls completed.
  /// fn must be safe to call concurrently for distinct indices and must
  /// not throw.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  /// As ParallelFor, but fn additionally receives the stable index of the
  /// thread running it: fn(worker, i) with worker in [0, num_threads()),
  /// where worker 0 is the calling thread. Two tasks with the same worker
  /// index never run concurrently, so callers can hand each worker its own
  /// mutable scratch (e.g. an ExplainWorkspace) without synchronization —
  /// the worker-indexed workspace pools of harness::RunMethods and
  /// stream::DriftMonitor. Which indices land on which worker is
  /// unspecified; anything worker-indexed must therefore be scratch only,
  /// never part of the output (the slot-i output rule above keeps results
  /// deterministic).
  void ParallelForWorker(size_t count,
                         const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop(size_t worker);

  /// Claims and runs indices of `job` until none remain; wakes the caller
  /// after finishing the job's last task. `worker` is the stable index of
  /// the draining thread (0 = the ParallelForWorker caller).
  void Drain(internal::ParallelJob& job, size_t worker);

  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar job_cv_;   // workers wait here for a new job
  CondVar done_cv_;  // the caller waits here for completion
  bool stop_ MOCHE_GUARDED_BY(mutex_) = false;
  // +1 per ParallelFor; workers compare against the last generation they
  // drained to tell a fresh job from a wakeup for an already-retired one.
  uint64_t generation_ MOCHE_GUARDED_BY(mutex_) = 0;
  std::shared_ptr<internal::ParallelJob> job_ MOCHE_GUARDED_BY(mutex_);
};

/// One-shot convenience: runs fn(i) for i in [0, count) on a temporary pool
/// of ResolveThreadCount(num_threads) threads (capped at count). Prefer a
/// long-lived ThreadPool when calling in a loop.
void ParallelFor(size_t num_threads, size_t count,
                 const std::function<void(size_t)>& fn);

/// One-shot worker-indexed convenience: as the member ParallelForWorker on
/// a temporary pool. fn's worker argument is < ParallelWorkerCount(
/// num_threads, count).
void ParallelForWorker(size_t num_threads, size_t count,
                       const std::function<void(size_t, size_t)>& fn);

/// The number of distinct worker indices the free ParallelFor/
/// ParallelForWorker functions use for a (num_threads, count) pair — the
/// size a caller's per-worker scratch pool needs.
size_t ParallelWorkerCount(size_t num_threads, size_t count);

}  // namespace moche

#endif  // MOCHE_UTIL_PARALLEL_H_
