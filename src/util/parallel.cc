#include "util/parallel.h"

#include <algorithm>

namespace moche {

size_t HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

size_t ResolveThreadCount(size_t requested) {
  if (requested == 0) return HardwareConcurrency();
  return requested;
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t total = ResolveThreadCount(num_threads);
  workers_.reserve(total - 1);
  for (size_t i = 0; i + 1 < total; ++i) {
    // Worker index 0 is reserved for the ParallelFor caller; spawned
    // workers take 1..total-1.
    workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    stop_ = true;
  }
  job_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  // Inline fast path: nothing to distribute, or nobody to distribute to.
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ParallelForWorker(count, [&fn](size_t /*worker*/, size_t i) { fn(i); });
}

void ThreadPool::ParallelForWorker(
    size_t count, const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  // Inline fast path mirroring ParallelFor: the caller is worker 0.
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }

  auto job = std::make_shared<internal::ParallelJob>();
  job->fn = fn;
  job->count = count;
  {
    MutexLock lock(&mutex_);
    job_ = job;
    ++generation_;
  }
  job_cv_.NotifyAll();

  // The calling thread drains indices alongside the workers.
  Drain(*job, /*worker=*/0);

  MutexLock lock(&mutex_);
  while (job->done_count.load(std::memory_order_acquire) != job->count) {
    done_cv_.Wait(mutex_);
  }
  if (job_ == job) job_ = nullptr;
}

void ThreadPool::Drain(internal::ParallelJob& job, size_t worker) {
  for (size_t i = job.next_index.fetch_add(1, std::memory_order_relaxed);
       i < job.count;
       i = job.next_index.fetch_add(1, std::memory_order_relaxed)) {
    job.fn(worker, i);
    if (job.done_count.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.count) {
      // Last task overall: wake the caller. Taking the mutex orders this
      // notify after the caller entered its wait, closing the missed-wakeup
      // window.
      MutexLock lock(&mutex_);
      done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::WorkerLoop(size_t worker) {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<internal::ParallelJob> job;
    {
      // An explicit predicate loop (not the lambda-predicate wait): the
      // guarded reads stay in this function's scope, where the analysis
      // can see the lock is held.
      MutexLock lock(&mutex_);
      while (!stop_ && generation_ == seen_generation) job_cv_.Wait(mutex_);
      if (stop_) return;
      seen_generation = generation_;
      job = job_;  // null when the job already retired; just wait again
    }
    if (job != nullptr) Drain(*job, worker);
  }
}

void ParallelFor(size_t num_threads, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  const size_t threads = ParallelWorkerCount(num_threads, count);
  if (threads <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(threads);
  pool.ParallelFor(count, fn);
}

void ParallelForWorker(size_t num_threads, size_t count,
                       const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  const size_t threads = ParallelWorkerCount(num_threads, count);
  if (threads <= 1) {
    for (size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  ThreadPool pool(threads);
  pool.ParallelForWorker(count, fn);
}

size_t ParallelWorkerCount(size_t num_threads, size_t count) {
  return std::min(ResolveThreadCount(num_threads), count);
}

}  // namespace moche
