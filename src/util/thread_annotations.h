// Clang thread-safety-analysis annotation macros.
//
// These wrap clang's `-Wthread-safety` attributes so lock discipline is
// checked at compile time: a member declared MOCHE_GUARDED_BY(mutex_) can
// only be read or written while `mutex_` is held, a function declared
// MOCHE_REQUIRES(mu) can only be called with `mu` held, and so on. The
// analysis only understands annotated capability types, so the repo pairs
// these macros with the annotated `Mutex`/`MutexLock`/`CondVar` wrappers in
// util/mutex.h — a raw std::mutex is invisible to it (libstdc++'s is
// unannotated). Everything expands to nothing on compilers without the
// attributes (gcc, MSVC), so annotations are free to sprinkle liberally.
//
// Ownership & thread-safety: macros only — no state, no code. The CI
// static-analysis job builds with clang and `-Wthread-safety -Werror`, so
// an annotation violation is a build break, not a code-review nit.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#ifndef MOCHE_UTIL_THREAD_ANNOTATIONS_H_
#define MOCHE_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define MOCHE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MOCHE_THREAD_ANNOTATION_(x)  // no-op on non-clang compilers
#endif

/// Declares a class to be a capability (lockable) type. The string names
/// the capability kind in diagnostics, e.g. MOCHE_CAPABILITY("mutex").
#define MOCHE_CAPABILITY(x) MOCHE_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose constructor acquires a capability and whose
/// destructor releases it (e.g. MutexLock).
#define MOCHE_SCOPED_CAPABILITY MOCHE_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated member may only be accessed while holding the given
/// capability: `bool stop_ MOCHE_GUARDED_BY(mutex_);`.
#define MOCHE_GUARDED_BY(x) MOCHE_THREAD_ANNOTATION_(guarded_by(x))

/// As MOCHE_GUARDED_BY for the data a pointer member points to (the pointer
/// itself is unguarded).
#define MOCHE_PT_GUARDED_BY(x) MOCHE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The annotated function may only be called while holding the given
/// capability (which it neither acquires nor releases).
#define MOCHE_REQUIRES(...) \
  MOCHE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// As MOCHE_REQUIRES for shared (reader) access.
#define MOCHE_REQUIRES_SHARED(...) \
  MOCHE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires the capability and holds it on return.
#define MOCHE_ACQUIRE(...) \
  MOCHE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The annotated function releases a held capability.
#define MOCHE_RELEASE(...) \
  MOCHE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The annotated function must NOT be called with the capability held
/// (guards against self-deadlock on a non-recursive mutex).
#define MOCHE_EXCLUDES(...) \
  MOCHE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that the function returns a reference to the given capability
/// (for accessors exposing an internal mutex).
#define MOCHE_RETURN_CAPABILITY(x) MOCHE_THREAD_ANNOTATION_(lock_returned(x))

/// Asserts at runtime that the calling thread holds the capability, and
/// tells the analysis to assume so from here on.
#define MOCHE_ASSERT_CAPABILITY(x) \
  MOCHE_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch: turns the analysis off for one function. Every use must
/// carry a comment explaining why the discipline cannot be expressed.
#define MOCHE_NO_THREAD_SAFETY_ANALYSIS \
  MOCHE_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // MOCHE_UTIL_THREAD_ANNOTATIONS_H_
