#include "util/simd.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

namespace moche {
namespace simd {

namespace {

// The scalar reference kernels. These are byte-for-byte the loops the
// callers in core/bounds.cc and ks/ks_test.cc used to run inline; the
// vector tables are required to match them bit-identically (file header of
// simd.h), so this translation unit is the specification.

size_t Theorem1FilterScanScalar(const double* ct_d, const double* cr_d,
                                const double* rigid_d, size_t begin,
                                size_t end, double scale, double omega,
                                double hh_d, double* running_max) {
  double run = *running_max;
  for (size_t i = begin; i < end; ++i) {
    const double gamma = ct_d[i] - scale * cr_d[i];
    if (gamma > run) run = gamma;
    const double a = run - omega;
    const double b = gamma + omega;
    const double rigid_hi = ct_d[i] < hh_d ? ct_d[i] : hh_d;
    const double lo_sum = hh_d + rigid_d[i];
    const double rigid_lo = lo_sum > 0.0 ? lo_sum : 0.0;
    if (!(a <= rigid_hi && b >= rigid_lo && b - a >= 1.0)) {
      *running_max = run;
      return i;
    }
  }
  *running_max = run;
  return end;
}

size_t Theorem2FilterScanScalar(const double* ct_d, const double* cr_d,
                                size_t begin, size_t end, double scale,
                                double omega, double hh_d,
                                double* running_max) {
  double run = *running_max;
  for (size_t i = begin; i < end; ++i) {
    const double gamma = ct_d[i] - scale * cr_d[i];
    if (gamma > run) run = gamma;
    const double a = run - omega;
    const double b = gamma + omega;
    if (!(b >= 0.0 && a <= hh_d && a <= b)) {
      *running_max = run;
      return i;
    }
  }
  *running_max = run;
  return end;
}

double EcdfSweepCumScalar(const double* cum_r, const double* cum_t, size_t q,
                          double n, double m, size_t* best_index) {
  double best = 0.0;
  for (size_t i = 0; i < q; ++i) {
    const double d = std::fabs(cum_r[i] / n - cum_t[i] / m);
    if (d > best) {
      best = d;
      *best_index = i;
    }
  }
  return best;
}

double EcdfSweepCountsScalar(const double* cum_r_d, const int64_t* count_t,
                             const int64_t* removed, size_t q, double n,
                             double m_rem, size_t* best_index) {
  double best = 0.0;
  int64_t cum_t = 0;
  for (size_t i = 0; i < q; ++i) {
    cum_t += count_t[i] - removed[i];
    const double d =
        std::fabs(cum_r_d[i] / n - static_cast<double>(cum_t) / m_rem);
    if (d > best) {
      best = d;
      *best_index = i;
    }
  }
  return best;
}

bool AllFiniteScalar(const double* values, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    if (!std::isfinite(values[i])) return false;
  }
  return true;
}

constexpr Kernels kScalarKernels = {
    Theorem1FilterScanScalar, Theorem2FilterScanScalar, EcdfSweepCumScalar,
    EcdfSweepCountsScalar,    AllFiniteScalar,
};

Isa DetectIsa() {
  const char* env = std::getenv("MOCHE_SIMD");
  if (env != nullptr && env[0] != '\0') {
    if (std::strcmp(env, "avx2") == 0 &&
        internal::Avx2KernelsOrNull() != nullptr) {
      return Isa::kAvx2;
    }
    if (std::strcmp(env, "neon") == 0 &&
        internal::NeonKernelsOrNull() != nullptr) {
      return Isa::kNeon;
    }
    // "scalar", an unavailable ISA, or an unknown value: the safe choice.
    return Isa::kScalar;
  }
  if (internal::Avx2KernelsOrNull() != nullptr) return Isa::kAvx2;
  if (internal::NeonKernelsOrNull() != nullptr) return Isa::kNeon;
  return Isa::kScalar;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
    case Isa::kScalar:
      break;
  }
  return "scalar";
}

Isa ActiveIsa() {
  static const Isa isa = DetectIsa();
  return isa;
}

const char* ActiveIsaName() { return IsaName(ActiveIsa()); }

const Kernels& KernelsFor(Isa isa) {
  switch (isa) {
    case Isa::kAvx2: {
      const Kernels* k = internal::Avx2KernelsOrNull();
      if (k != nullptr) return *k;
      break;
    }
    case Isa::kNeon: {
      const Kernels* k = internal::NeonKernelsOrNull();
      if (k != nullptr) return *k;
      break;
    }
    case Isa::kScalar:
      break;
  }
  return kScalarKernels;
}

bool IsaAvailable(Isa isa) {
  switch (isa) {
    case Isa::kAvx2:
      return internal::Avx2KernelsOrNull() != nullptr;
    case Isa::kNeon:
      return internal::NeonKernelsOrNull() != nullptr;
    case Isa::kScalar:
      return true;
  }
  return false;
}

const Kernels& ActiveKernels() {
  static const Kernels& kernels = KernelsFor(ActiveIsa());
  return kernels;
}

}  // namespace simd
}  // namespace moche
