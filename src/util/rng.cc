#include "util/rng.h"

#include <numeric>

#include "util/logging.h"

namespace moche {

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t count) {
  MOCHE_CHECK(count <= n);
  // Floyd's algorithm would avoid materialising [0, n), but the callers
  // sample from small candidate pools; a partial Fisher-Yates is simpler.
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), size_t{0});
  for (size_t i = 0; i < count; ++i) {
    const size_t j = static_cast<size_t>(
        Integer(static_cast<int64_t>(i), static_cast<int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  MOCHE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) {
    return static_cast<size_t>(
        Integer(0, static_cast<int64_t>(weights.size()) - 1));
  }
  double r = Uniform(0.0, total);
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;  // numerical slack: land on the last bucket
}

}  // namespace moche
