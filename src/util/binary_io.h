// Canonical little-endian binary encoding primitives for the snapshot
// subsystem (src/persist) and the per-layer serialization hooks that feed
// it (PreparedReference, StreamingKs, PreparedReferenceCache).
//
// Every multi-byte integer is written least-significant byte first and
// every double is written as the little-endian bytes of its IEEE-754 bit
// pattern, independent of host byte order — a snapshot taken on any
// machine restores bit-identically on any other (the aarch64 CI leg
// compiles the same byte layout). Doubles round-trip exactly, including
// -0.0, denormals, and NaN payloads: the codec copies bits, it never
// formats or parses decimal text.
//
// The Reader is the untrusted-input half: every Read* bounds-checks
// against the remaining buffer and returns false instead of reading past
// the end, and the length-prefixed readers reject any count that could
// not possibly fit in the remaining bytes before allocating — a corrupted
// length field must fail cleanly, never OOM or overflow.
//
// Ownership & thread-safety: free functions append to a caller-owned
// string; a Reader borrows its buffer (the caller keeps it alive) and is
// mutable single-consumer cursor state — one decoding pass owns one
// Reader. No shared state anywhere.

#ifndef MOCHE_UTIL_BINARY_IO_H_
#define MOCHE_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace moche {
namespace bin {

inline void AppendU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

inline void AppendU32Le(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void AppendU64Le(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

/// The IEEE-754 bit pattern of `v` as an integer (value-preserving on any
/// platform where double and uint64_t share a byte order, i.e. all
/// supported ones).
inline uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline double DoubleFromBits(uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Bit-exact: the double's IEEE bit pattern in little-endian byte order.
inline void AppendDoubleLe(double v, std::string* out) {
  AppendU64Le(DoubleBits(v), out);
}

/// u64 length + raw bytes.
inline void AppendString(std::string_view s, std::string* out) {
  AppendU64Le(static_cast<uint64_t>(s.size()), out);
  out->append(s.data(), s.size());
}

/// u64 count + bit-exact doubles.
inline void AppendDoubleArray(const std::vector<double>& values,
                              std::string* out) {
  AppendU64Le(static_cast<uint64_t>(values.size()), out);
  for (double v : values) AppendDoubleLe(v, out);
}

/// Bounds-checked cursor over an untrusted byte buffer. Every reader
/// returns false (leaving the output untouched and the cursor unmoved)
/// when the remaining bytes cannot satisfy the read.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  bool ReadU8(uint8_t* out) {
    if (remaining() < 1) return false;
    *out = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }

  bool ReadU32Le(uint32_t* out) {
    if (remaining() < 4) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + static_cast<size_t>(i)]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  bool ReadU64Le(uint64_t* out) {
    if (remaining() < 8) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + static_cast<size_t>(i)]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return true;
  }

  bool ReadDoubleLe(double* out) {
    uint64_t bits = 0;
    if (!ReadU64Le(&bits)) return false;
    *out = DoubleFromBits(bits);
    return true;
  }

  /// Length-prefixed string. A length exceeding the remaining bytes is a
  /// corruption, rejected before any allocation.
  bool ReadString(std::string* out) {
    uint64_t len = 0;
    const size_t mark = pos_;
    if (!ReadU64Le(&len)) return false;
    if (len > remaining()) {
      pos_ = mark;
      return false;
    }
    out->assign(bytes_.data() + pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return true;
  }

  /// Count-prefixed double array; the count is capped by remaining()/8
  /// before the output vector is sized, so a corrupted count cannot OOM.
  bool ReadDoubleArray(std::vector<double>* out) {
    uint64_t count = 0;
    const size_t mark = pos_;
    if (!ReadU64Le(&count)) return false;
    if (count > remaining() / 8) {
      pos_ = mark;
      return false;
    }
    out->clear();
    out->reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      double v = 0.0;
      ReadDoubleLe(&v);  // cannot fail: count * 8 <= remaining was checked
      out->push_back(v);
    }
    return true;
  }

  /// Raw view of the next `len` bytes (for nested section payloads).
  bool ReadBytes(size_t len, std::string_view* out) {
    if (len > remaining()) return false;
    *out = bytes_.substr(pos_, len);
    pos_ += len;
    return true;
  }

  bool Skip(size_t len) {
    if (len > remaining()) return false;
    pos_ += len;
    return true;
  }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace bin
}  // namespace moche

#endif  // MOCHE_UTIL_BINARY_IO_H_
