#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace moche {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

void AppendG17(double v, std::string* out) {
  // %.17g prints every double round-trip exactly; chars_format::general
  // with precision 17 is the same format, minus the locale dependence.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, 17);
  out->append(buf, res.ptr);
}

std::string FormatG17(double v) {
  std::string out;
  AppendG17(v, &out);
  return out;
}

std::string FormatFixed(double v, int precision) {
  if (precision < 0) precision = 0;
  if (precision > 17) precision = 17;
  // Large enough for the widest finite double in fixed notation:
  // sign + 309 integral digits + '.' + 17 fractional digits.
  char buf[344];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::fixed, precision);
  return std::string(buf, res.ptr);
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  // strtod would accept "+1.5"; from_chars does not — keep accepting it.
  if (!s.empty() && s.front() == '+') s.remove_prefix(1);
  if (s.empty()) return false;
  double v = 0.0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  if (res.ec != std::errc() || res.ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, long long* out) {
  s = Trim(s);
  if (s.empty() || s.size() > 63) return false;
  char buf[64];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  const long long v = std::strtoll(buf, &end, 10);
  if (end != buf + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace moche
