// Status and Result<T>: the error-handling vocabulary of the library.
//
// Library code does not throw exceptions. Fallible operations return a
// Status (for procedures) or a Result<T> (for functions producing a value),
// in the style of RocksDB's rocksdb::Status and Arrow's arrow::Result.
//
// Ownership & thread-safety: Status and Result<T> are value types owning
// their (copy-on-write-free) message storage; distinct instances are
// independent, and const access to a shared instance is safe like any
// immutable value.

#ifndef MOCHE_UTIL_STATUS_H_
#define MOCHE_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace moche {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyPasses = 4,     ///< the KS test passes; nothing to explain
  kResourceExhausted = 5, ///< an iteration/sampling budget ran out
  kInternal = 6,
  kUnimplemented = 7,
};

/// Returns a stable, human-readable name such as "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// The outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is empty in the common OK case).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyPasses(std::string msg) {
    return Status(StatusCode::kAlreadyPasses, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsAlreadyPasses() const { return code_ == StatusCode::kAlreadyPasses; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining its absence.
///
/// Typical use:
///   Result<Explanation> r = moche.Explain(...);
///   if (!r.ok()) return r.status();
///   const Explanation& e = r.value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the success path).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (the failure path).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      // An OK status carries no value; normalize to an internal error so the
      // bug is visible instead of silently dereferencing nothing.
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(repr_);
  }

  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK Status to the caller.
#define MOCHE_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::moche::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a Result<T> expression; on success binds the value, otherwise
/// returns its Status to the caller.
#define MOCHE_ASSIGN_OR_RETURN(lhs, rexpr)     \
  MOCHE_ASSIGN_OR_RETURN_IMPL_(                \
      MOCHE_STATUS_CONCAT_(_moche_result, __LINE__), lhs, rexpr)

#define MOCHE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define MOCHE_STATUS_CONCAT_(a, b) MOCHE_STATUS_CONCAT_IMPL_(a, b)
#define MOCHE_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace moche

#endif  // MOCHE_UTIL_STATUS_H_
