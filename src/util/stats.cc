#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace moche {

namespace {

// NaN breaks the strict weak ordering std::sort requires (UB), so every
// sorting entry point screens for it and propagates NaN instead.
bool ContainsNan(const std::vector<double>& v) {
  for (double x : v) {
    if (std::isnan(x)) return true;
  }
  return false;
}

}  // namespace

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double mu = Mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - mu) * (x - mu);
  return ss / static_cast<double>(v.size() - 1);
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Quantile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  if (ContainsNan(v)) return std::numeric_limits<double>::quiet_NaN();
  p = std::clamp(p, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  const double pos = p * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  // Exact positions and equal neighbors return the order statistic itself:
  // the interpolation arithmetic would produce NaN on infinities
  // (0 * inf, inf - inf).
  if (frac == 0.0 || v[lo] == v[hi]) return v[lo];
  return v[lo] + frac * (v[hi] - v[lo]);
}

double Median(std::vector<double> v) { return Quantile(std::move(v), 0.5); }

FiveNumberSummary Summarize(const std::vector<double>& v) {
  FiveNumberSummary s;
  if (v.empty()) return s;
  if (ContainsNan(v)) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    s.min = s.q1 = s.median = s.q3 = s.max = s.mean = nan;
    return s;
  }
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.q1 = Quantile(sorted, 0.25);
  s.median = Quantile(sorted, 0.5);
  s.q3 = Quantile(sorted, 0.75);
  s.mean = Mean(v);
  return s;
}

void ZNormalize(std::vector<double>* v) {
  const double mu = Mean(*v);
  const double sd = StdDev(*v);
  if (sd < 1e-12) {
    std::fill(v->begin(), v->end(), 0.0);
    return;
  }
  for (double& x : *v) x = (x - mu) / sd;
}

}  // namespace moche
