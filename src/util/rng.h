// Deterministic random number generation.
//
// Every stochastic component in the library (generators, samplers,
// optimizers) takes an explicit Rng so experiments are reproducible from a
// single seed. Rng wraps std::mt19937_64 with the distributions the code
// base needs.
//
// Ownership & thread-safety: an Rng owns its engine state and every draw
// mutates it — per-thread ownership only. Parallel code derives one
// independently seeded Rng per task (never a shared one) so results stay
// deterministic under any scheduling.

#ifndef MOCHE_UTIL_RNG_H_
#define MOCHE_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace moche {

/// Seeded pseudo-random source; cheap to pass by reference, not thread-safe.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform integer in the closed range [lo, hi].
  int64_t Integer(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Poisson-distributed count.
  int64_t Poisson(double mean) {
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  /// Exponential with the given rate.
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j =
          static_cast<size_t>(Integer(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) (count <= n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t count);

  /// Draws an index in [0, weights.size()) proportionally to weights.
  /// Non-positive weights are treated as zero; if all weights are zero the
  /// draw is uniform.
  size_t WeightedIndex(const std::vector<double>& weights);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace moche

#endif  // MOCHE_UTIL_RNG_H_
