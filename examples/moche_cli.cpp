// moche_cli — explain a failed KS test from CSV files.
//
// Usage:
//   moche_cli --reference ref.csv --test test.csv
//             [--column 0] [--alpha 0.05]
//             [--scores scores.csv]   preference = descending scores
//             [--order value_desc|value_asc|index]
//             [--max-print 20]
//
// Reads one numeric column from each file (no header detection: pass files
// with plain numbers, or strip headers first), runs the KS test, and — if
// it fails — prints the most comprehensible counterfactual explanation.
// Exit code: 0 = explained or already passing, 1 = usage/data error.
//
// Try it:
//   printf '1\n2\n3\n4\n5\n' > /tmp/ref.csv
//   printf '2\n9\n9\n9\n9\n' > /tmp/test.csv
//   ./build/examples/moche_cli --reference /tmp/ref.csv --test /tmp/test.csv --alpha 0.3

#include <cstdio>
#include <cstring>
#include <string>

#include "core/moche.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace {

struct CliArgs {
  std::string reference_path;
  std::string test_path;
  std::string scores_path;
  std::string order = "index";
  size_t column = 0;
  double alpha = 0.05;
  size_t max_print = 20;
};

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--reference") {
      const char* v = next();
      if (v == nullptr) return false;
      args->reference_path = v;
    } else if (flag == "--test") {
      const char* v = next();
      if (v == nullptr) return false;
      args->test_path = v;
    } else if (flag == "--scores") {
      const char* v = next();
      if (v == nullptr) return false;
      args->scores_path = v;
    } else if (flag == "--order") {
      const char* v = next();
      if (v == nullptr) return false;
      args->order = v;
    } else if (flag == "--column") {
      const char* v = next();
      long long parsed = 0;
      if (v == nullptr || !moche::ParseInt64(v, &parsed) || parsed < 0) {
        return false;
      }
      args->column = static_cast<size_t>(parsed);
    } else if (flag == "--alpha") {
      const char* v = next();
      if (v == nullptr || !moche::ParseDouble(v, &args->alpha)) return false;
    } else if (flag == "--max-print") {
      const char* v = next();
      long long parsed = 0;
      if (v == nullptr || !moche::ParseInt64(v, &parsed) || parsed < 0) {
        return false;
      }
      args->max_print = static_cast<size_t>(parsed);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return !args->reference_path.empty() && !args->test_path.empty();
}

moche::Result<std::vector<double>> LoadColumn(const std::string& path,
                                              size_t column) {
  auto table = moche::ReadCsvFile(path);
  MOCHE_RETURN_IF_ERROR(table.status());
  return moche::NumericColumn(*table, column);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace moche;
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: moche_cli --reference ref.csv --test test.csv\n"
                 "                 [--column N] [--alpha A]\n"
                 "                 [--scores scores.csv]\n"
                 "                 [--order value_desc|value_asc|index]\n"
                 "                 [--max-print N]\n");
    return 1;
  }

  auto reference = LoadColumn(args.reference_path, args.column);
  if (!reference.ok()) {
    std::fprintf(stderr, "reference: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }
  auto test = LoadColumn(args.test_path, args.column);
  if (!test.ok()) {
    std::fprintf(stderr, "test: %s\n", test.status().ToString().c_str());
    return 1;
  }

  PreferenceList preference;
  if (!args.scores_path.empty()) {
    auto scores = LoadColumn(args.scores_path, 0);
    if (!scores.ok()) {
      std::fprintf(stderr, "scores: %s\n", scores.status().ToString().c_str());
      return 1;
    }
    if (scores->size() != test->size()) {
      std::fprintf(stderr, "scores has %zu rows, test has %zu\n",
                   scores->size(), test->size());
      return 1;
    }
    preference = PreferenceByScoreDesc(*scores);
  } else if (args.order == "value_desc") {
    preference = PreferenceByValue(*test, true);
  } else if (args.order == "value_asc") {
    preference = PreferenceByValue(*test, false);
  } else if (args.order == "index") {
    preference = IdentityPreference(test->size());
  } else {
    std::fprintf(stderr, "unknown --order '%s'\n", args.order.c_str());
    return 1;
  }

  Moche engine;
  auto report = engine.Explain(*reference, *test, args.alpha, preference);
  if (report.status().IsAlreadyPasses()) {
    std::printf("KS test passes at alpha=%g; nothing to explain\n",
                args.alpha);
    return 0;
  }
  if (!report.ok()) {
    std::fprintf(stderr, "explanation failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("KS test FAILED: D=%s > p=%s (n=%zu, m=%zu)\n",
              moche::FormatFixed(report->original.statistic, 6).c_str(),
              moche::FormatFixed(report->original.threshold, 6).c_str(),
              reference->size(), test->size());
  std::printf("explanation size k=%zu (lower bound k_hat=%zu)\n", report->k,
              report->k_hat);
  std::printf("row,value\n");
  for (size_t i = 0; i < report->explanation.indices.size(); ++i) {
    if (i == args.max_print) {
      std::printf("... (%zu more; raise --max-print)\n",
                  report->explanation.indices.size() - i);
      break;
    }
    const size_t idx = report->explanation.indices[i];
    // FormatG17 round-trips the double exactly; %g would truncate to six
    // significant digits and honor LC_NUMERIC.
    std::printf("%zu,%s\n", idx, moche::FormatG17((*test)[idx]).c_str());
  }
  std::printf("after removal: D=%s <= p=%s\n",
              moche::FormatFixed(report->after.statistic, 6).c_str(),
              moche::FormatFixed(report->after.threshold, 6).c_str());
  return 0;
}
