// Quickstart: explain one failed Kolmogorov-Smirnov test in ~30 lines.
//
// A reference sample R comes from N(0,1); the test sample T is mostly
// N(0,1) with a handful of planted outliers. The KS test rejects; MOCHE
// returns the smallest subset of T whose removal makes the test pass,
// picking the subset most consistent with our preference order.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/moche.h"
#include "util/rng.h"

int main() {
  using namespace moche;

  // 1. Data: 400 reference points, 200 test points, 30 of them shifted.
  Rng rng(2021);
  std::vector<double> reference;
  std::vector<double> test;
  for (int i = 0; i < 400; ++i) reference.push_back(rng.Normal(0.0, 1.0));
  for (int i = 0; i < 200; ++i) test.push_back(rng.Normal(0.0, 1.0));
  for (int i = 0; i < 30; ++i) test[i * 6] = rng.Uniform(4.0, 6.0);

  // 2. The failed test.
  auto outcome = ks::Run(reference, test, /*alpha=*/0.05);
  if (!outcome.ok() || !outcome->reject) {
    std::printf("the KS test passed; nothing to explain\n");
    return 0;
  }
  std::printf("KS test FAILED: D = %.4f > p = %.4f\n", outcome->statistic,
              outcome->threshold);

  // 3. A preference order over the test points. Here: largest values first
  //    ("I suspect the big readings"). Any total order works.
  const PreferenceList preference = PreferenceByValue(test, true);

  // 4. Explain.
  Moche engine;
  auto report = engine.Explain(reference, test, 0.05, preference);
  if (!report.ok()) {
    std::printf("no explanation: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("explanation: %zu of %zu test points (lower bound k_hat=%zu)\n",
              report->k, test.size(), report->k_hat);
  std::printf("removed values:");
  for (size_t idx : report->explanation.indices) {
    std::printf(" %.2f", test[idx]);
  }
  std::printf("\nafter removal: D = %.4f <= p = %.4f  -> passes\n",
              report->after.statistic, report->after.threshold);
  return 0;
}
