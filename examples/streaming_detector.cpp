// Streaming drift detection + explanation: the incremental KS test
// (dos Reis et al., the paper's ref [17]) watches a stream in O(log n) per
// observation; the moment it fires, MOCHE explains the drift.
//
// This is the production pattern the paper's introduction motivates:
// detection has to be cheap enough to run on every point, while the
// (more expensive) explanation only runs on the rare alarms.
//
// Run: ./build/examples/streaming_detector

#include <cmath>
#include <cstdio>

#include "core/moche.h"
#include "ks/streaming.h"
#include "util/rng.h"

int main() {
  using namespace moche;
  Rng rng(7);

  // Reference behaviour: latency-like, log-normal.
  std::vector<double> reference;
  for (int i = 0; i < 1000; ++i) {
    reference.push_back(std::exp(rng.Normal(0.0, 0.5)));
  }

  auto detector = StreamingKs::Create(reference, /*window_size=*/200,
                                      /*alpha=*/0.01);
  if (!detector.ok()) return 1;

  // The live stream: normal for 1500 points, then a regression doubles
  // latencies for one in three requests.
  Moche engine;
  size_t alarms = 0;
  for (int t = 0; t < 3000; ++t) {
    double v = std::exp(rng.Normal(0.0, 0.5));
    const bool drifted_phase = t >= 1500;
    if (drifted_phase && t % 3 == 0) v *= 2.2;
    if (!detector->Push(v).ok()) return 1;

    if (detector->Drifted()) {
      ++alarms;
      std::printf("t=%4d: DRIFT (D=%.4f > p=%.4f)\n", t,
                  detector->CurrentOutcome()->statistic,
                  detector->CurrentOutcome()->threshold);

      // Explain the window: prefer the most recent points.
      const std::vector<double> window = detector->WindowContents();
      std::vector<double> recency(window.size());
      for (size_t i = 0; i < window.size(); ++i) {
        recency[i] = static_cast<double>(i);
      }
      auto report = engine.Explain(reference, window, 0.01,
                                   PreferenceByScoreDesc(recency));
      if (report.ok()) {
        double mean_removed = 0.0;
        for (size_t idx : report->explanation.indices) {
          mean_removed += window[idx];
        }
        mean_removed /= static_cast<double>(report->k);
        std::printf(
            "        explanation: %zu of %zu window points, mean value "
            "%.2f (window mean of removed points is the slow traffic)\n",
            report->k, window.size(), mean_removed);
      }
      break;  // in production: page the on-call and keep streaming
    }
  }
  if (alarms == 0) {
    std::printf("no drift detected (unexpected for this scenario)\n");
    return 1;
  }
  std::printf("\nDetection cost: O(log n) per observation via the treap-"
              "backed incremental KS;\nthe O(m(n+m)) explanation ran once, "
              "on the alarm.\n");
  return 0;
}
