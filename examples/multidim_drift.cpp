// Two-dimensional drift explanation — a working prototype of the paper's
// future-work direction ("extend MOCHE to interpret failed KS tests
// conducted on multidimensional data points").
//
// Scenario: a service tracks (request_size, latency) pairs. The joint
// distribution drifts because a new client sends large-and-slow requests.
// The marginals barely move, so two 1-D KS tests stay quiet, but the 2-D
// Fasano-Franceschini test fires — and the greedy 2-D explainer isolates
// the offending points.
//
// Run: ./build/examples/multidim_drift

#include <cstdio>

#include "ks/ks_test.h"
#include "mdks/explain.h"
#include "util/rng.h"

int main() {
  using namespace moche;
  Rng rng(42);

  // Reference: sizes and latencies anti-correlated (big requests hit the
  // cache-friendly bulk path).
  auto draw_normal_pair = [&]() {
    const double size = rng.Normal(0.0, 1.0);
    const double latency = -0.6 * size + 0.8 * rng.Normal(0.0, 1.0);
    return mdks::Point2{size, latency};
  };
  std::vector<mdks::Point2> reference;
  for (int i = 0; i < 500; ++i) reference.push_back(draw_normal_pair());

  // Test batch: 255 normal pairs + 45 from the new client: large AND slow
  // (positively correlated corner), with near-unchanged marginals.
  std::vector<mdks::Point2> test;
  for (int i = 0; i < 255; ++i) test.push_back(draw_normal_pair());
  const size_t new_client_begin = test.size();
  for (int i = 0; i < 45; ++i) {
    const double size = rng.Normal(1.2, 0.4);
    test.push_back({size, 0.9 * size + 0.3 * rng.Normal(0.0, 1.0)});
  }

  // 1-D KS tests on each marginal.
  std::vector<double> ref_x, ref_y, test_x, test_y;
  for (const auto& p : reference) {
    ref_x.push_back(p.x);
    ref_y.push_back(p.y);
  }
  for (const auto& p : test) {
    test_x.push_back(p.x);
    test_y.push_back(p.y);
  }
  auto kx = ks::Run(ref_x, test_x, 0.05);
  auto ky = ks::Run(ref_y, test_y, 0.05);
  std::printf("1-D KS on size:    D=%.4f vs p=%.4f -> %s\n", kx->statistic,
              kx->threshold, kx->reject ? "reject" : "pass");
  std::printf("1-D KS on latency: D=%.4f vs p=%.4f -> %s\n", ky->statistic,
              ky->threshold, ky->reject ? "reject" : "pass");

  // The 2-D test sees the dependence change.
  auto joint = mdks::Test2D(reference, test, 0.05);
  if (!joint.ok()) return 1;
  std::printf("2-D FF KS:         D=%.4f, p-value=%.2e -> %s\n\n",
              joint->statistic, joint->p_value,
              joint->reject ? "REJECT" : "pass");
  if (!joint->reject) return 0;

  // Preference: most atypical points first (distance from the reference
  // centroid in the whitened-ish sense; any domain order works).
  std::vector<double> scores(test.size());
  for (size_t i = 0; i < test.size(); ++i) {
    scores[i] = test[i].x * test[i].y;  // positive quadrant correlation
  }
  auto expl = mdks::ExplainGreedy2D(reference, test, 0.05,
                                    PreferenceByScoreDesc(scores));
  if (!expl.ok()) {
    std::printf("explanation failed: %s\n", expl.status().ToString().c_str());
    return 1;
  }

  size_t from_new_client = 0;
  for (size_t idx : expl->indices) {
    if (idx >= new_client_begin) ++from_new_client;
  }
  std::printf("2-D explanation: %zu of %zu points removed; %zu (%.0f%%) "
              "belong to the new client's traffic\n",
              expl->size(), test.size(), from_new_client,
              100.0 * static_cast<double>(from_new_client) /
                  static_cast<double>(expl->size()));
  std::printf("\n(The exact minimal-and-lexicographic guarantee is 1-D "
              "MOCHE's; the 2-D explainer\nis the heuristic prototype of "
              "the paper's future-work direction.)\n");
  return 0;
}
