// The paper's running example (Examples 1-2, Section 6.3): two months of
// COVID-19 case data fail the KS test on age groups. Two different pieces
// of domain knowledge — "large health authorities drive spread" vs
// "seniors are hit harder" — yield two different most-comprehensible
// explanations of the SAME failed test, both of the same minimal size.
//
// Run: ./build/examples/covid_case_study

#include <cstdio>

#include "core/moche.h"
#include "datasets/covid.h"

int main() {
  using namespace moche;
  using datasets::CovidData;
  using datasets::HealthAuthority;

  const CovidData data = datasets::MakeCovidData();
  const KsInstance instance = data.MakeInstance(/*alpha=*/0.05);

  auto outcome = RunInstance(instance);
  if (!outcome.ok()) return 1;
  std::printf("August cases (reference): %zu\n", instance.reference.size());
  std::printf("September cases (test):   %zu\n", instance.test.size());
  std::printf("KS test at alpha=0.05: D = %.4f, p = %.4f -> %s\n\n",
              outcome->statistic, outcome->threshold,
              outcome->reject ? "FAILED" : "passed");

  Moche engine;

  // Preference 1: cases from populous health authorities first.
  auto by_population =
      engine.Explain(instance, data.PreferenceByHaPopulationDesc());
  // Preference 2: senior cases first.
  auto by_age = engine.Explain(instance, data.PreferenceByAgeGroupDesc());
  if (!by_population.ok() || !by_age.ok()) {
    std::printf("explanation failed\n");
    return 1;
  }

  std::printf("Both explanations contain %zu cases (unique minimal size).\n\n",
              by_population->k);

  std::printf("I_p (population preference) by health authority:\n");
  const std::vector<size_t> ha_counts =
      data.HaCounts(by_population->explanation.indices);
  for (int h = 0; h < 5; ++h) {
    std::printf("  %-5s %4zu\n",
                datasets::HealthAuthorityName(static_cast<HealthAuthority>(h)),
                ha_counts[h]);
  }

  std::printf("\nI_a (age preference) by age group:\n");
  const std::vector<size_t> age_counts =
      data.AgeCounts(by_age->explanation.indices);
  const char* kAgeLabels[10] = {"0-10",  "10-19", "20-29", "30-39", "40-49",
                                "50-59", "60-69", "70-79", "80-89", "90+"};
  for (int g = 0; g < 10; ++g) {
    std::printf("  %-6s %4zu\n", kAgeLabels[g], age_counts[g]);
  }

  std::printf(
      "\nInterpretation: under the population preference every removed case\n"
      "comes from FHA (the largest HA); under the age preference the removed\n"
      "cases skew senior. Same failed test, same size, different —\n"
      "equally valid — stories, each matching its user's domain knowledge.\n");
  return 0;
}
