// Continuous monitoring with explanations (the paper's Section 6 workload
// as a live loop): a stream::DriftMonitor watches several synthetic metric
// streams at once, the incremental KS detectors flag drifting windows, and
// every alarm arrives with its MOCHE counterfactual — the smallest set of
// window observations whose removal reconciles the stream with its
// reference.
//
// Run: ./build/examples/example_stream_monitor

#include <cstdio>

#include "stream/drift_monitor.h"
#include "timeseries/generators.h"

int main() {
  using namespace moche;

  // Six streams cycling the three drift shapes; all share one reference
  // sample, which the monitor's cache prepares exactly once.
  const auto scenarios =
      ts::MakeDriftScenarioSuite(/*count=*/6, /*seed=*/42,
                                 /*reference_size=*/500, /*length=*/900);
  const std::vector<double>& reference = scenarios.front().reference;

  stream::MonitorOptions options;
  options.alpha = 0.01;  // strict: alarms should be drifts, not noise
  options.rearm = stream::RearmPolicy::kOncePerExcursion;
  options.num_threads = 0;  // one worker per hardware core
  auto monitor = stream::DriftMonitor::Create(options);
  if (!monitor.ok()) return 1;

  for (const ts::DriftScenario& sc : scenarios) {
    if (!monitor->AddStream(sc.name, reference, /*window_size=*/120).ok()) {
      return 1;
    }
  }

  // Feed everything in batches of 50 ticks per stream.
  const size_t length = scenarios.front().observations.size();
  std::vector<std::vector<double>> batch(scenarios.size());
  for (size_t t0 = 0; t0 < length; t0 += 50) {
    for (size_t i = 0; i < scenarios.size(); ++i) {
      const auto& obs = scenarios[i].observations;
      const size_t end = std::min(obs.size(), t0 + 50);
      batch[i].assign(obs.begin() + static_cast<long>(t0),
                      obs.begin() + static_cast<long>(end));
    }
    if (!monitor->PushBatch(batch).ok()) return 1;
  }

  const auto cache = monitor->cache_stats();
  std::printf("%zu streams, reference prepared %zu time(s), %zu cache "
              "hits\n\n",
              monitor->num_streams(), cache.misses, cache.hits);

  for (const stream::DriftEvent& event : monitor->events()) {
    std::printf("[tick %4llu] %-22s D=%.3f > %.3f",
                static_cast<unsigned long long>(event.tick),
                monitor->stream_name(event.stream).c_str(),
                event.outcome.statistic, event.outcome.threshold);
    if (event.explain_status.ok()) {
      std::printf("  -> remove %zu/%zu window points (k_hat=%zu), "
                  "D after %.3f\n",
                  event.report.k, event.report.original.m,
                  event.report.k_hat, event.report.after.statistic);
    } else {
      std::printf("  -> %s\n", event.explain_status.ToString().c_str());
    }
  }

  const auto stats = monitor->stats();
  std::printf("\n%llu observations, %llu rejecting pushes, %llu "
              "explanations emitted\n",
              static_cast<unsigned long long>(stats.observations),
              static_cast<unsigned long long>(stats.drift_ticks),
              static_cast<unsigned long long>(stats.explanations));
  std::printf("(one alarm per excursion: the re-arm policy suppresses "
              "duplicate explanations\n while a stream stays above "
              "threshold)\n");
  return 0;
}
