// Drift monitoring on a time series (the paper's Section 6.1 workload):
// slide a reference window and an adjacent test window over a machine
// temperature series, run the KS test on each pair, and for every failed
// test produce a MOCHE explanation whose preference list comes from
// Spectral Residual outlier scores — "explain the drift, preferring the
// points an anomaly detector already distrusts".
//
// Run: ./build/examples/drift_monitor

#include <cstdio>

#include "core/moche.h"
#include "harness/metrics.h"
#include "signal/spectral_residual.h"
#include "timeseries/generators.h"
#include "timeseries/window.h"

int main() {
  using namespace moche;

  // A KC-family series: machine temperature with a bearing-failure drift.
  const ts::Dataset kc = ts::MakeKcDataset(/*seed=*/7, /*length_scale=*/0.5);
  const ts::TimeSeries& series = kc.series.front();
  std::printf("monitoring '%s' (%zu observations)\n", series.name.c_str(),
              series.length());

  // Outlier scores once for the whole series.
  auto scores = signal::SpectralResidualScores(series.values);
  if (!scores.ok()) return 1;

  ts::WindowSweepOptions sweep;
  sweep.window = 150;
  sweep.alpha = 0.05;
  auto failed = ts::FailedWindowTests(series, sweep);
  if (!failed.ok()) return 1;
  std::printf("window size %zu: %zu failed KS tests\n\n", sweep.window,
              failed->size());

  Moche engine;
  for (const ts::WindowTest& wt : *failed) {
    const KsInstance inst = ts::MakeInstance(series, wt, sweep.alpha);
    // preference: SR scores of the test window, most anomalous first
    std::vector<double> window_scores(
        scores->begin() + static_cast<long>(wt.test_begin),
        scores->begin() + static_cast<long>(wt.test_begin + wt.window));
    const PreferenceList pref = PreferenceByScoreDesc(window_scores);

    auto report = engine.Explain(inst, pref);
    if (!report.ok()) {
      std::printf("t=[%5zu,%5zu): %s\n", wt.test_begin,
                  wt.test_begin + wt.window,
                  report.status().ToString().c_str());
      continue;
    }
    const double rmse = harness::ExplanationRmse(inst, report->explanation);
    std::printf(
        "t=[%5zu,%5zu): D=%.3f -> remove %3zu/%zu points "
        "(k_hat=%3zu, RMSE after removal %.3f)\n",
        wt.test_begin, wt.test_begin + wt.window, wt.outcome.statistic,
        report->k, inst.test.size(), report->k_hat, rmse);

    // where in the window do the removed points sit?
    size_t in_first_half = 0;
    for (size_t idx : report->explanation.indices) {
      if (idx < wt.window / 2) ++in_first_half;
    }
    std::printf("                 removed points: %zu in first half, %zu in "
                "second half of the window\n",
                in_first_half, report->k - in_first_half);
  }
  std::printf(
      "\nEach line is an alarm a human would review: the removed points are\n"
      "the smallest set of observations that reconcile the two windows.\n");
  return 0;
}
