// ML model-input monitoring (the "maintaining machine learning models"
// application of the paper's introduction): a deployed model scores a
// stream of inputs; the serving team keeps last week's feature values as a
// reference and tests today's batch with the KS test. When the test fails,
// MOCHE names the minimal set of today's inputs responsible — before
// anyone spends money on relabeling or retraining.
//
// Today's batch mixes the normal population with a burst of traffic from a
// new client integration (shifted feature distribution). The preference
// list ranks recent requests first ("newest suspects first").
//
// Run: ./build/examples/model_monitoring

#include <cmath>
#include <cstdio>

#include "core/moche.h"
#include "util/rng.h"

int main() {
  using namespace moche;
  Rng rng(123);

  // Last week's feature distribution: log-normal-ish request sizes.
  std::vector<double> reference;
  for (int i = 0; i < 2000; ++i) {
    reference.push_back(std::exp(rng.Normal(1.0, 0.4)));
  }

  // Today's batch: 500 normal requests, then a burst of 60 from the new
  // integration with systematically larger payloads, interleaved late in
  // the day (higher indices = more recent).
  std::vector<double> today;
  for (int i = 0; i < 500; ++i) {
    today.push_back(std::exp(rng.Normal(1.0, 0.4)));
  }
  for (int i = 0; i < 60; ++i) {
    today.push_back(std::exp(rng.Normal(1.9, 0.3)));
  }

  auto outcome = ks::Run(reference, today, 0.05);
  if (!outcome.ok()) return 1;
  std::printf("reference |R| = %zu, today's batch |T| = %zu\n",
              reference.size(), today.size());
  std::printf("KS: D = %.4f vs p = %.4f -> %s\n\n", outcome->statistic,
              outcome->threshold, outcome->reject ? "DRIFT ALARM" : "ok");
  if (!outcome->reject) return 0;

  // Newest requests first: index descending.
  std::vector<double> recency(today.size());
  for (size_t i = 0; i < today.size(); ++i) {
    recency[i] = static_cast<double>(i);
  }
  const PreferenceList newest_first = PreferenceByScoreDesc(recency);

  Moche engine;
  auto report = engine.Explain(reference, today, 0.05, newest_first);
  if (!report.ok()) {
    std::printf("no explanation: %s\n", report.status().ToString().c_str());
    return 1;
  }

  // How many of the explanation points are from the burst (indices >= 500)?
  size_t from_burst = 0;
  for (size_t idx : report->explanation.indices) {
    if (idx >= 500) ++from_burst;
  }
  std::printf("explanation: %zu requests (%.1f%% of the batch)\n", report->k,
              100.0 * static_cast<double>(report->k) /
                  static_cast<double>(today.size()));
  std::printf("%zu of them (%.0f%%) come from the new integration's burst\n",
              from_burst,
              100.0 * static_cast<double>(from_burst) /
                  static_cast<double>(report->k));
  std::printf("after removal: D = %.4f <= p = %.4f\n\n",
              report->after.statistic, report->after.threshold);
  std::printf(
      "Action: quarantine the new client's traffic and re-run the test —\n"
      "no model retraining needed for the rest of the population.\n");
  return 0;
}
